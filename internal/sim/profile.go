package sim

import (
	"sync"
	"sync/atomic"

	"armbar/internal/metrics"
)

// This file is the cycle-attribution profiler. Every advance of a
// thread's virtual clock is tagged with a Cause — the paper's question
// is precisely *where barrier cycles go*, and aggregate op histograms
// (metrics.go) cannot separate a DMB's transaction round trip from the
// coherence miss that follows it. Attribution is structural, not
// sampled: the only two ways a thread's clock moves are the advBy /
// advTo helpers below, so the per-cause sums reconstruct the engine's
// own cycle counts exactly.
//
// Conservation invariant. Each thread carries a shadow clock
// (threadProfile.now) updated by the *same* floating-point operation as
// the real clock: advBy applies `+= d` to both, advTo assigns the same
// `to` to both. While every advance goes through a helper the two
// clocks stay bit-identical; a direct `t.now = ...` write anywhere else
// would desynchronize them and be counted as a gap (and its cycles
// surfaced under CauseUnattributed) at the next attribution or at fold
// time. The conservation test therefore asserts gaps == 0 and
// prof.now == t.now with *exact* float64 equality — no tolerance — for
// every thread of every cell. The per-cause sums are only compared to
// the engine total within a tiny relative tolerance, because regrouping
// the same deltas by cause re-associates the additions.
//
// Cost when dark: one bool branch per clock advance (profOn), nothing
// else — no allocation, no atomic, no pointer chase. The golden digest
// test pins that enabling profiling changes no simulated value: the
// helpers perform the identical arithmetic either way and never touch
// the rng.

// Cause classifies one advance of a thread's virtual clock.
type Cause uint8

const (
	// CauseIssue is front-end issue cost: store-buffer retirement of a
	// store, and loads satisfied by store-to-load forwarding.
	CauseIssue Cause = iota
	// CauseCacheHit is a load served by a valid (or readable-stale)
	// local copy.
	CauseCacheHit
	// CauseMiss is the coherence-miss penalty: the distance-dependent
	// travel to the owner or farthest sharer.
	CauseMiss
	// CauseSBDrain is issue stalled on the store buffer: a full buffer
	// waiting for its earliest commit, or an acquire-release atomic
	// waiting for earlier stores to drain.
	CauseSBDrain
	// CauseDMBFull .. CauseDep split barrier stalls by instruction, the
	// paper's per-option cost axis.
	CauseDMBFull
	CauseDMBSt
	CauseDMBLd
	CauseDSB
	CauseISB
	CauseDep
	// CauseSTLR is the implementation-defined STLR pipeline penalty
	// band (Obs 3).
	CauseSTLR
	// CauseAtomic is the exclusive-acquisition cost of LSE atomics.
	CauseAtomic
	// CauseSpin is any cycle spent inside a spin-wait loop (compiled
	// engine: SpinEQ/SpinNE ops). It overrides the underlying cause so
	// lock-acquisition spinning is separable from useful loads.
	CauseSpin
	// CauseWork is local computation (Work/Nops).
	CauseWork
	// CauseUnattributed absorbs cycles from clock writes that bypassed
	// the attribution helpers. Always zero while the invariant holds;
	// reported so a future regression is visible rather than silent.
	CauseUnattributed

	// NumCauses sizes per-cause tables.
	NumCauses
)

// Profile-cause names, package-level constants in the exporter's
// snake_case convention (enforced by armvet's metricvet pass).
const (
	causeNameIssue        = "issue"
	causeNameCacheHit     = "cache_hit"
	causeNameMiss         = "coherence_miss"
	causeNameSBDrain      = "store_buffer_drain"
	causeNameDMBFull      = "barrier_dmb_full"
	causeNameDMBSt        = "barrier_dmb_st"
	causeNameDMBLd        = "barrier_dmb_ld"
	causeNameDSB          = "barrier_dsb"
	causeNameISB          = "barrier_isb"
	causeNameDep          = "barrier_dep"
	causeNameSTLR         = "barrier_stlr"
	causeNameAtomic       = "atomic_rmw"
	causeNameSpin         = "spin_wait"
	causeNameWork         = "work"
	causeNameUnattributed = "unattributed"
)

var causeNames = [NumCauses]string{
	CauseIssue:        causeNameIssue,
	CauseCacheHit:     causeNameCacheHit,
	CauseMiss:         causeNameMiss,
	CauseSBDrain:      causeNameSBDrain,
	CauseDMBFull:      causeNameDMBFull,
	CauseDMBSt:        causeNameDMBSt,
	CauseDMBLd:        causeNameDMBLd,
	CauseDSB:          causeNameDSB,
	CauseISB:          causeNameISB,
	CauseDep:          causeNameDep,
	CauseSTLR:         causeNameSTLR,
	CauseAtomic:       causeNameAtomic,
	CauseSpin:         causeNameSpin,
	CauseWork:         causeNameWork,
	CauseUnattributed: causeNameUnattributed,
}

func (c Cause) String() string {
	if c < NumCauses {
		return causeNames[c]
	}
	return "invalid"
}

// threadProfile is a thread's attribution table: fixed arrays embedded
// in the Thread (and thus in the machine's thread arena), so profiling
// allocates nothing on any path.
type threadProfile struct {
	cycles [NumCauses]float64
	ops    [NumCauses]uint64
	now    float64 // shadow clock; bit-identical to Thread.now while conserved
	gaps   uint64  // clock writes that bypassed attribution (0 = conserved)
}

// advBy advances the thread's clock by d cycles attributed to c. The
// dark path is the bare `t.now += d` the engine always performed plus
// one predictable branch.
func (t *Thread) advBy(c Cause, d float64) {
	if t.profOn {
		t.attrBy(c, d)
		return
	}
	t.now += d
}

// advTo advances the thread's clock to an absolute time attributed to
// c (barrier responses, store-buffer drain targets).
func (t *Thread) advTo(c Cause, to float64) {
	if t.profOn {
		t.attrTo(c, to)
		return
	}
	t.now = to
}

// attrBy is the profiling-on half of advBy. The `t.now += d` here is
// the same expression the dark path executes, so enabling profiling
// cannot perturb a simulated value; `p.now += d` starts from an equal
// float and applies the identical operation, keeping the shadow clock
// bit-identical.
func (t *Thread) attrBy(c Cause, d float64) {
	p := &t.prof
	if p.now != t.now {
		p.gaps++
		p.cycles[CauseUnattributed] += t.now - p.now
		p.now = t.now
	}
	if t.spinning {
		c = CauseSpin
	}
	p.cycles[c] += d
	p.ops[c]++
	p.now += d
	t.now += d
}

// attrTo is the profiling-on half of advTo: the delta is banked against
// the shadow clock and both clocks are assigned the same absolute time.
func (t *Thread) attrTo(c Cause, to float64) {
	p := &t.prof
	if p.now != t.now {
		p.gaps++
		p.cycles[CauseUnattributed] += t.now - p.now
		p.now = t.now
	}
	if t.spinning {
		c = CauseSpin
	}
	p.cycles[c] += to - p.now
	p.ops[c]++
	p.now = to
	t.now = to
}

// Profile is an aggregated attribution table (one thread, one machine,
// or a whole run).
type Profile struct {
	Cycles [NumCauses]float64
	Ops    [NumCauses]uint64

	Threads  uint64
	Machines uint64

	// Gaps counts clock writes that bypassed attribution plus threads
	// whose shadow clock disagreed with the engine clock at fold time.
	// Zero means the conservation invariant held exactly.
	Gaps uint64

	// EngineCycles is the sum of final thread clocks as the engine
	// itself reports them — the ground truth the attribution must
	// reconstruct.
	EngineCycles float64
}

// addThread folds one thread's table in. Called after Run, when the
// thread's clocks are final.
func (p *Profile) addThread(t *Thread) {
	for i := range t.prof.cycles {
		p.Cycles[i] += t.prof.cycles[i]
		p.Ops[i] += t.prof.ops[i]
	}
	p.Threads++
	p.Gaps += t.prof.gaps
	if t.prof.now != t.now {
		// A trailing unattributed advance with no later helper call to
		// detect it: surface it the same way.
		p.Gaps++
		p.Cycles[CauseUnattributed] += t.now - t.prof.now
	}
	p.EngineCycles += t.now
}

// Add folds another profile in.
func (p *Profile) Add(o *Profile) {
	for i := range p.Cycles {
		p.Cycles[i] += o.Cycles[i]
		p.Ops[i] += o.Ops[i]
	}
	p.Threads += o.Threads
	p.Machines += o.Machines
	p.Gaps += o.Gaps
	p.EngineCycles += o.EngineCycles
}

// Sub returns p minus o, the attribution delta between two snapshots
// of a cumulative collector (how figures computes per-experiment
// profiles).
func (p Profile) Sub(o Profile) Profile {
	d := p
	for i := range d.Cycles {
		d.Cycles[i] -= o.Cycles[i]
		d.Ops[i] -= o.Ops[i]
	}
	d.Threads -= o.Threads
	d.Machines -= o.Machines
	d.Gaps -= o.Gaps
	d.EngineCycles -= o.EngineCycles
	return d
}

// Attributed returns the per-cause cycle sum, accumulated in taxonomy
// order. It equals EngineCycles up to floating-point re-association
// whenever Conserved reports true.
func (p *Profile) Attributed() float64 {
	var s float64
	for i := range p.Cycles {
		s += p.Cycles[i]
	}
	return s
}

// Conserved reports whether every clock advance was attributed: no
// helper bypasses, and every thread's shadow clock ended bit-identical
// to the engine clock.
func (p *Profile) Conserved() bool { return p.Gaps == 0 }

// CauseCycles is one row of a ProfileReport.
type CauseCycles struct {
	Cause  string  `json:"cause"`
	Cycles float64 `json:"cycles"`
	Ops    uint64  `json:"ops"`
}

// ProfileReport is the JSON shape of a profile (manifest section,
// /profile endpoint). Causes appear in taxonomy order; causes never
// observed are omitted.
type ProfileReport struct {
	Machines         uint64        `json:"machines"`
	Threads          uint64        `json:"threads"`
	Gaps             uint64        `json:"gaps"`
	EngineCycles     float64       `json:"engine_cycles"`
	AttributedCycles float64       `json:"attributed_cycles"`
	Causes           []CauseCycles `json:"causes"`
}

// Report renders the profile for export.
func (p *Profile) Report() ProfileReport {
	r := ProfileReport{
		Machines:         p.Machines,
		Threads:          p.Threads,
		Gaps:             p.Gaps,
		EngineCycles:     p.EngineCycles,
		AttributedCycles: p.Attributed(),
	}
	for c := Cause(0); c < NumCauses; c++ {
		if p.Ops[c] == 0 && p.Cycles[c] == 0 {
			continue
		}
		r.Causes = append(r.Causes, CauseCycles{
			Cause:  causeNames[c],
			Cycles: p.Cycles[c],
			Ops:    p.Ops[c],
		})
	}
	return r
}

// CyclesByCause returns the nonzero per-cause cycle totals keyed by
// cause name — the manifest's per-experiment shape.
func (p *Profile) CyclesByCause() map[string]float64 {
	out := make(map[string]float64)
	for c := Cause(0); c < NumCauses; c++ {
		if p.Cycles[c] != 0 {
			out[causeNames[c]] = p.Cycles[c]
		}
	}
	return out
}

// MetricsInto exports the profile as registry gauges. Gauge-set (not
// counter-add) semantics: the caller passes a cumulative snapshot, so
// re-export is idempotent — the /metrics handler refreshes on every
// scrape.
func (p *Profile) MetricsInto(reg *metrics.Registry) {
	for c := Cause(0); c < NumCauses; c++ {
		reg.Gauge("sim_profile_cycles{cause=\"" + causeNames[c] + "\"}").Set(p.Cycles[c])
		reg.Gauge("sim_profile_ops{cause=\"" + causeNames[c] + "\"}").Set(float64(p.Ops[c]))
	}
	reg.Gauge("sim_profile_machines").Set(float64(p.Machines))
	reg.Gauge("sim_profile_threads").Set(float64(p.Threads))
	reg.Gauge("sim_profile_gaps").Set(float64(p.Gaps))
	reg.Gauge("sim_profile_engine_cycles").Set(p.EngineCycles)
	reg.Gauge("sim_profile_attributed_cycles").Set(p.Attributed())
}

// ProfileCollector accumulates profiles across machines. Machines fold
// into it once at the end of Run (one mutex acquisition per *machine*,
// never per op), so a -par grid of cells aggregates into one table.
type ProfileCollector struct {
	mu sync.Mutex
	p  Profile // armvet:guardedby mu
}

// NewProfileCollector returns an empty collector.
func NewProfileCollector() *ProfileCollector {
	return &ProfileCollector{}
}

// fold adds one finished machine's threads. Run calls it after the
// event drain, when thread clocks are final.
func (c *ProfileCollector) fold(m *Machine) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.p.Machines++
	for _, t := range m.threads {
		c.p.addThread(t)
	}
}

// Snapshot returns a copy of the accumulated profile.
func (c *ProfileCollector) Snapshot() Profile {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.p
}

// Reset clears the collector.
func (c *ProfileCollector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.p = Profile{}
}

// globalProfile mirrors globalMetrics (see metrics.go): process-global
// because experiment cells build their own machines, atomic for -par
// safety, set once at startup.
var globalProfile atomic.Pointer[ProfileCollector]

// SetGlobalProfile installs (or, with nil, removes) the collector every
// subsequent New machine attributes into. Machines built while it is
// nil stay dark: one bool branch per clock advance, nothing else.
func SetGlobalProfile(c *ProfileCollector) {
	globalProfile.Store(c)
}

// GlobalProfile returns the installed collector, or nil.
func GlobalProfile() *ProfileCollector {
	return globalProfile.Load()
}

// Profile returns this machine's own attribution table (complete after
// Run; same read contract as Stats).
func (m *Machine) Profile() Profile {
	var p Profile
	p.Machines = 1
	for _, t := range m.threads {
		p.addThread(t)
	}
	return p
}
