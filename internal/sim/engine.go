package sim

import (
	"fmt"
	"sync/atomic"
)

// Engine selects how workload packages drive the simulator: the
// compiled engine lowers deterministic op sequences to micro-op
// programs (package prog) executed by the dispatch table in
// compiled.go; the interpreted engine runs the original Go closures
// through the per-op Thread methods. Both produce byte-identical
// results — the golden digest and differential tests enforce it — so
// the choice is purely a performance escape hatch (-engine in
// cmd/armbar).
type Engine int

const (
	// EngineDefault resolves to the process-wide default (compiled
	// unless SetDefaultEngine overrode it).
	EngineDefault Engine = iota
	// EngineCompiled precompiles op sequences into micro-op programs.
	EngineCompiled
	// EngineInterp runs the original closure bodies op by op.
	EngineInterp
)

func (e Engine) String() string {
	switch e {
	case EngineDefault:
		return "default"
	case EngineCompiled:
		return "compiled"
	case EngineInterp:
		return "interp"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine resolves a -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "compiled":
		return EngineCompiled, nil
	case "interp":
		return EngineInterp, nil
	default:
		return 0, fmt.Errorf("sim: unknown engine %q (want compiled or interp)", s)
	}
}

// defaultEngine holds the process-wide engine default; 0 means unset,
// which resolves to compiled.
var defaultEngine atomic.Int32

// SetDefaultEngine installs the process-wide default used when a
// workload's config leaves the engine unset. Passing EngineDefault
// restores the built-in default (compiled).
func SetDefaultEngine(e Engine) { defaultEngine.Store(int32(e)) }

// Resolve maps EngineDefault to the process-wide default.
func (e Engine) Resolve() Engine {
	if e != EngineDefault {
		return e
	}
	if d := Engine(defaultEngine.Load()); d != EngineDefault {
		return d
	}
	return EngineCompiled
}
