package sim

import (
	"testing"

	"armbar/internal/isa"
	"armbar/internal/platform"
)

// Microbenchmarks for the simulator hot path: the thread↔scheduler
// rendezvous and the buffered-store commit machinery. Regenerate the
// committed snapshot with `make bench-snapshot` (BENCH_sim.json) so
// future PRs have a trajectory to compare against.

// BenchmarkRendezvousLoadHit is the floor of a simulated operation:
// cache-hit loads with nothing in flight, so the measured cost is the
// park/wake rendezvous plus the load bookkeeping.
func BenchmarkRendezvousLoadHit(b *testing.B) {
	m := New(Config{Plat: platform.Kunpeng916(), Seed: 1, MaxTime: 1e18})
	addr := m.Alloc(1)
	n := b.N
	m.Spawn(0, func(t *Thread) {
		for i := 0; i < n; i++ {
			t.Load(addr)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	m.Run()
}

// BenchmarkRendezvousTwoThreads interleaves two runnable threads so
// every operation also pays the scheduler's min-time pick between
// parked requests.
func BenchmarkRendezvousTwoThreads(b *testing.B) {
	m := New(Config{Plat: platform.Kunpeng916(), Seed: 1, MaxTime: 1e18})
	a1, a2 := m.Alloc(1), m.Alloc(1)
	n := b.N / 2
	body := func(addr uint64) func(*Thread) {
		return func(t *Thread) {
			for i := 0; i < n; i++ {
				t.Load(addr)
			}
		}
	}
	m.Spawn(0, body(a1))
	m.Spawn(4, body(a2))
	b.ReportAllocs()
	b.ResetTimer()
	m.Run()
}

// BenchmarkStoreCommit drives the buffered-store path end to end:
// issue into the store buffer, schedule the commit event, drain it
// through the event heap, apply it to the directory. With the event
// free list this allocates nothing per store in steady state.
func BenchmarkStoreCommit(b *testing.B) {
	m := New(Config{Plat: platform.Kunpeng916(), Seed: 1, MaxTime: 1e18})
	addr := m.Alloc(1)
	n := b.N
	m.Spawn(0, func(t *Thread) {
		for i := 0; i < n; i++ {
			t.Store(addr, uint64(i))
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	m.Run()
}

// BenchmarkStoreDMBFull alternates a store with a full barrier, the
// paper's fenced-stream pattern: every barrier waits out the pending
// commit through the ACE fabric model.
func BenchmarkStoreDMBFull(b *testing.B) {
	m := New(Config{Plat: platform.Kunpeng916(), Seed: 1, MaxTime: 1e18})
	addr := m.Alloc(1)
	n := b.N
	m.Spawn(0, func(t *Thread) {
		for i := 0; i < n; i++ {
			t.Store(addr, uint64(i))
			t.Barrier(isa.DMBFull)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	m.Run()
}
