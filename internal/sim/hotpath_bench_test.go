package sim_test

import (
	"testing"

	"armbar/internal/simbench"
)

// The simulator hot-path microbenchmark bodies live in
// internal/simbench so the `armbar perfcheck` regression gate can
// rerun exactly what these wrappers measure. Regenerate the committed
// snapshot with `make bench-snapshot` (BENCH_sim.json); the wrapper
// names here must match its entries.

func BenchmarkRendezvousLoadHit(b *testing.B)    { simbench.RendezvousLoadHit(b) }
func BenchmarkRendezvousTwoThreads(b *testing.B) { simbench.RendezvousTwoThreads(b) }
func BenchmarkStoreCommit(b *testing.B)          { simbench.StoreCommit(b) }
func BenchmarkStoreDMBFull(b *testing.B)         { simbench.StoreDMBFull(b) }
func BenchmarkCompiledDispatch(b *testing.B)     { simbench.CompiledDispatch(b) }
