package sim

import (
	"testing"
	"testing/quick"

	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/topo"
)

func TestTSOStoresCommitInOrder(t *testing.T) {
	// In TSO mode a writer's stores become visible in program order: a
	// reader that sees the later store must see the earlier one.
	m := New(Config{Plat: platform.Kunpeng916(), Mode: TSO, Seed: 5})
	a := m.Alloc(1)
	b := m.Alloc(1)
	violated := false
	m.Spawn(0, func(th *Thread) {
		for i := uint64(1); i <= 200; i++ {
			th.Store(a, i)
			th.Store(b, i)
		}
	})
	m.Spawn(4, func(th *Thread) {
		for i := 0; i < 400; i++ {
			vb := th.Load(b)
			va := th.Load(a)
			if va < vb { // saw b=i without a=i
				violated = true
			}
		}
	})
	m.Run()
	if violated {
		t.Fatal("TSO must keep store order observable")
	}
}

func TestRMWAtomicUnderContention(t *testing.T) {
	m := New(Config{Plat: platform.Kunpeng916(), Mode: WMM, Seed: 6})
	ctr := m.Alloc(1)
	const threads, per = 8, 150
	for i := 0; i < threads; i++ {
		m.Spawn(topo.CoreID(i*4), func(th *Thread) {
			for j := 0; j < per; j++ {
				th.FetchAdd(ctr, 1)
			}
		})
	}
	m.Run()
	if got := m.Directory().Committed(ctr); got != threads*per {
		t.Fatalf("FetchAdd lost updates: %d, want %d", got, threads*per)
	}
}

func TestSwapReturnsPreviousValueChain(t *testing.T) {
	// Property: a chain of swaps hands each thread the value the
	// previous swap stored — nothing lost, nothing duplicated.
	m := New(Config{Plat: platform.Kunpeng916(), Mode: WMM, Seed: 7})
	slot := m.Alloc(1)
	const threads, per = 6, 100
	seen := make([]map[uint64]bool, threads)
	for i := 0; i < threads; i++ {
		i := i
		seen[i] = make(map[uint64]bool)
		m.Spawn(topo.CoreID(i*8), func(th *Thread) {
			for j := 0; j < per; j++ {
				token := uint64(i*per+j) + 1
				old := th.Swap(slot, token)
				seen[i][old] = true
			}
		})
	}
	m.Run()
	all := make(map[uint64]int)
	for _, s := range seen {
		for v := range s {
			all[v]++
		}
	}
	for v, n := range all {
		if n > 1 {
			t.Fatalf("token %d observed by %d swaps; swaps must be atomic", v, n)
		}
	}
	// Every token except the final resident was observed exactly once
	// (plus the initial zero).
	final := m.Directory().Committed(slot)
	missing := 0
	for tok := uint64(1); tok <= threads*per; tok++ {
		if tok != final && all[tok] == 0 {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d swap tokens vanished", missing)
	}
}

func TestCASOnlySucceedsOnMatch(t *testing.T) {
	m := New(Config{Plat: platform.Kunpeng916(), Mode: WMM, Seed: 8})
	a := m.Alloc(1)
	m.SetInitial(a, 10)
	var r1, r2, r3 bool
	m.Spawn(0, func(th *Thread) {
		r1 = th.CompareAndSwap(a, 10, 20)
		r2 = th.CompareAndSwap(a, 10, 30) // stale expectation
		r3 = th.CompareAndSwap(a, 20, 40)
	})
	m.Run()
	if !r1 || r2 || !r3 {
		t.Fatalf("CAS results = %v %v %v, want true false true", r1, r2, r3)
	}
	if got := m.Directory().Committed(a); got != 40 {
		t.Fatalf("final = %d, want 40", got)
	}
}

func TestPropertySingleThreadSequentialSemantics(t *testing.T) {
	// Property: a single thread always reads back its latest write per
	// address, under any op interleaving (forwarding + commits).
	f := func(ops []uint16) bool {
		m := New(Config{Plat: platform.RaspberryPi4(), Mode: WMM, Seed: 3})
		base := m.Alloc(4)
		ok := true
		m.Spawn(0, func(th *Thread) {
			last := map[uint64]uint64{}
			for i, op := range ops {
				if i > 400 {
					break
				}
				addr := base + uint64(op%4)*64
				switch {
				case op%3 == 0:
					v := uint64(op) + 1
					th.Store(addr, v)
					last[addr] = v
				case op%7 == 0:
					th.Barrier(isa.DMBFull)
				default:
					got := th.Load(addr)
					if want, okL := last[addr]; okL && got != want {
						ok = false
					}
				}
			}
		})
		m.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkAndNopsAdvanceTime(t *testing.T) {
	m := New(Config{Plat: platform.Kunpeng916(), Mode: WMM, Seed: 1})
	var t1, t2 float64
	m.Spawn(0, func(th *Thread) {
		th.Nops(300)
		t1 = th.Now()
		th.Work(500)
		t2 = th.Now()
	})
	m.Run()
	if t1 != 100 { // 300 nops at width 3
		t.Errorf("Nops(300) advanced to %v, want 100", t1)
	}
	if t2 != 600 {
		t.Errorf("Work(500) advanced to %v, want 600", t2)
	}
}

func TestAllocDistinctLines(t *testing.T) {
	m := New(Config{Plat: platform.Kunpeng916(), Mode: WMM, Seed: 1})
	a := m.Alloc(2)
	b := m.Alloc(1)
	if a%64 != 0 || b%64 != 0 {
		t.Fatal("allocations must be line-aligned")
	}
	if b < a+128 {
		t.Fatal("allocations must not overlap")
	}
}

func TestLDAPRKeepsMLPAcrossAcquire(t *testing.T) {
	// The RCpc acquire must order later reads (no stale values) while
	// letting an independent following miss overlap the acquiring load
	// — so a chain of LDAPR+load is faster than LDAR+load but equally
	// ordered.
	run := func(acquirePC bool) float64 {
		m := New(Config{Plat: platform.Kunpeng916(), Mode: WMM, Seed: 21})
		a := m.Alloc(1)
		b := m.Alloc(1)
		peerA := m.Alloc(1)
		m.Spawn(0, func(th *Thread) {
			for i := 0; i < 400; i++ {
				if acquirePC {
					th.LoadAcquirePC(a)
				} else {
					th.LoadAcquire(a)
				}
				th.Load(b)
			}
		})
		m.Spawn(32, func(th *Thread) {
			for i := 0; i < 400; i++ {
				th.Store(peerA, uint64(i))
				th.Store(a, uint64(i))
				th.Store(b, uint64(i))
				th.Nops(20)
			}
		})
		return m.Run()
	}
	ldar := run(false)
	ldapr := run(true)
	if ldapr > ldar {
		t.Errorf("LDAPR chain (%g cycles) should not be slower than LDAR (%g)", ldapr, ldar)
	}
}
