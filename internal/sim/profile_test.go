package sim

import (
	"math"
	"reflect"
	"testing"

	"armbar/internal/metrics"
)

// checkConserved asserts the profile's structural invariant (no gaps:
// every clock advance went through the attribution helpers and every
// thread's shadow clock ended bit-identical to the engine clock) and
// that the per-cause sums reconstruct the engine total up to
// floating-point re-association.
func checkConserved(t *testing.T, p *Profile) {
	t.Helper()
	if !p.Conserved() {
		t.Errorf("profile not conserved: %d gaps, %g unattributed cycles",
			p.Gaps, p.Cycles[CauseUnattributed])
	}
	sum, total := p.Attributed(), p.EngineCycles
	if total == 0 {
		t.Fatal("engine reported zero total cycles")
	}
	if rel := math.Abs(sum-total) / total; rel > 1e-9 {
		t.Errorf("attributed %g vs engine %g: relative error %g beyond fp re-association",
			sum, total, rel)
	}
}

// TestProfileConservation runs the all-opcode differential workload —
// every load flavor, both store flavors, barriers, atomics, work, and
// a cross-thread spin — under both engines, both memory modes, and the
// acceptance seeds, and requires exact attribution each time.
func TestProfileConservation(t *testing.T) {
	pc := NewProfileCollector()
	SetGlobalProfile(pc)
	defer SetGlobalProfile(nil)
	for _, compiled := range []bool{false, true} {
		for _, mode := range []Mode{WMM, TSO} {
			for _, seed := range []int64{42, 7} {
				pc.Reset()
				runDifferential(t, mode, seed, compiled)
				p := pc.Snapshot()
				if p.Machines != 1 || p.Threads != 2 {
					t.Fatalf("compiled=%v %v seed %d: folded %d machines / %d threads, want 1/2",
						compiled, mode, seed, p.Machines, p.Threads)
				}
				checkConserved(t, &p)
			}
		}
	}
}

// TestProfileIsHarmless proves enabling attribution changes nothing
// observable: traced event sequence, stats, final memory, and clock are
// byte-identical dark and profiled, on both engines.
func TestProfileIsHarmless(t *testing.T) {
	for _, compiled := range []bool{false, true} {
		dark := runDifferential(t, WMM, 42, compiled)
		pc := NewProfileCollector()
		SetGlobalProfile(pc)
		lit := runDifferential(t, WMM, 42, compiled)
		SetGlobalProfile(nil)
		if !reflect.DeepEqual(dark, lit) {
			t.Errorf("compiled=%v: profiling changed the simulation (clock %g vs %g)",
				compiled, dark.elapsed, lit.elapsed)
		}
	}
}

// TestProfileSpinAttribution: the compiled differential workload spins
// on a flag with SpinEQ; those loads must land under spin_wait, and the
// interpreted engine — whose spin loops are opaque Go control flow —
// must see none.
func TestProfileSpinAttribution(t *testing.T) {
	pc := NewProfileCollector()
	SetGlobalProfile(pc)
	defer SetGlobalProfile(nil)

	runDifferential(t, WMM, 42, true)
	p := pc.Snapshot()
	if p.Ops[CauseSpin] == 0 {
		t.Error("compiled engine attributed no spin-wait ops")
	}
	checkConserved(t, &p)

	pc.Reset()
	runDifferential(t, WMM, 42, false)
	p = pc.Snapshot()
	if p.Ops[CauseSpin] != 0 {
		t.Errorf("interpreted engine attributed %d spin ops; its spins are invisible by design", p.Ops[CauseSpin])
	}
	checkConserved(t, &p)
}

// TestProfileCauseBreakdown sanity-checks where the differential
// workload's cycles land: barrier kinds used by the programs, atomics,
// work, and store-buffer retirement must all be nonzero.
func TestProfileCauseBreakdown(t *testing.T) {
	pc := NewProfileCollector()
	SetGlobalProfile(pc)
	defer SetGlobalProfile(nil)
	runDifferential(t, WMM, 42, true)
	p := pc.Snapshot()
	for _, c := range []Cause{CauseIssue, CauseDMBFull, CauseDMBSt, CauseAtomic, CauseWork, CauseSpin} {
		if p.Ops[c] == 0 {
			t.Errorf("cause %s: no ops attributed", c)
		}
	}
	if p.Ops[CauseUnattributed] != 0 {
		t.Errorf("unattributed ops: %d", p.Ops[CauseUnattributed])
	}
}

// TestProfileDarkMachineReportsGaps: folding a machine that ran with
// profiling disabled must not silently claim conservation — the whole
// run surfaces as gap/unattributed cycles.
func TestProfileDarkMachineReportsGaps(t *testing.T) {
	if GlobalProfile() != nil {
		t.Fatal("global profile unexpectedly installed")
	}
	m := newTestMachine(WMM, 42)
	a := m.Alloc(1)
	m.Spawn(0, func(th *Thread) { th.Store(a, 1); th.Work(10) })
	m.Run()
	p := m.Profile()
	if p.Conserved() {
		t.Error("dark machine claims conservation")
	}
	if p.Cycles[CauseUnattributed] == 0 {
		t.Error("dark machine's cycles not surfaced as unattributed")
	}
}

// TestProfileReportShape checks the export path: taxonomy order,
// omission of unobserved causes, the name mapping, and the delta
// arithmetic figures uses for per-experiment rollups.
func TestProfileReportShape(t *testing.T) {
	pc := NewProfileCollector()
	SetGlobalProfile(pc)
	defer SetGlobalProfile(nil)
	runDifferential(t, WMM, 42, true)
	mid := pc.Snapshot()
	runDifferential(t, WMM, 7, true)
	end := pc.Snapshot()

	r := end.Report()
	if r.Machines != 2 || r.Threads != 4 || r.Gaps != 0 {
		t.Fatalf("report header: %+v", r)
	}
	if len(r.Causes) == 0 {
		t.Fatal("report lists no causes")
	}
	seen := map[string]bool{}
	lastIdx := -1
	for _, cc := range r.Causes {
		if cc.Ops == 0 && cc.Cycles == 0 {
			t.Errorf("cause %s reported with no observations", cc.Cause)
		}
		if seen[cc.Cause] {
			t.Errorf("cause %s reported twice", cc.Cause)
		}
		seen[cc.Cause] = true
		idx := -1
		for c := Cause(0); c < NumCauses; c++ {
			if causeNames[c] == cc.Cause {
				idx = int(c)
			}
		}
		if idx <= lastIdx {
			t.Errorf("causes out of taxonomy order at %s", cc.Cause)
		}
		lastIdx = idx
	}

	delta := end.Sub(mid)
	if delta.Machines != 1 || delta.Threads != 2 {
		t.Fatalf("delta header: %+v", delta)
	}
	checkConserved(t, &delta)
	byCause := delta.CyclesByCause()
	if byCause[causeNameWork] <= 0 {
		t.Errorf("delta CyclesByCause work = %g", byCause[causeNameWork])
	}
	for name, v := range byCause {
		if v == 0 {
			t.Errorf("CyclesByCause includes zero entry %q", name)
		}
	}
}

// TestProfileMetricsInto checks the Prometheus-facing gauges, including
// idempotent re-export (gauge-set semantics).
func TestProfileMetricsInto(t *testing.T) {
	pc := NewProfileCollector()
	SetGlobalProfile(pc)
	defer SetGlobalProfile(nil)
	runDifferential(t, WMM, 42, true)
	p := pc.Snapshot()

	reg := metrics.NewRegistry()
	p.MetricsInto(reg)
	p.MetricsInto(reg) // second export must not double anything
	snap := reg.Snapshot()
	if got := snap.Gauges[`sim_profile_cycles{cause="work"}`]; got != p.Cycles[CauseWork] {
		t.Errorf("work gauge %g, profile %g", got, p.Cycles[CauseWork])
	}
	if got := snap.Gauges["sim_profile_machines"]; got != 1 {
		t.Errorf("machines gauge %g", got)
	}
	if got := snap.Gauges["sim_profile_gaps"]; got != 0 {
		t.Errorf("gaps gauge %g", got)
	}
	if got := snap.Gauges["sim_profile_engine_cycles"]; got != p.EngineCycles {
		t.Errorf("engine cycles gauge %g, want %g", got, p.EngineCycles)
	}
}

// TestCauseStringTotality keeps the name table total.
func TestCauseStringTotality(t *testing.T) {
	for c := Cause(0); c < NumCauses; c++ {
		if c.String() == "" || c.String() == "invalid" {
			t.Errorf("cause %d has no name", c)
		}
	}
	if Cause(255).String() != "invalid" {
		t.Error("out-of-range cause must stringify as invalid")
	}
}
