package sim_test

import (
	"fmt"

	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/sim"
)

// Example_messagePassing runs the paper's Table-1 exchange with the
// correct barrier pair on the server model and reports the outcome.
func Example_messagePassing() {
	m := sim.New(sim.Config{Plat: platform.Kunpeng916(), Mode: sim.WMM, Seed: 1})
	data := m.Alloc(1)
	flag := m.Alloc(1)

	m.Spawn(0, func(t *sim.Thread) {
		t.Store(data, 23)
		t.Barrier(isa.DMBSt) // publish data before the flag
		t.Store(flag, 1)
	})
	var local uint64
	m.Spawn(32, func(t *sim.Thread) { // the other NUMA node
		for t.Load(flag) != 1 {
			t.Nops(4)
		}
		t.Barrier(isa.DMBLd) // order the data read after the flag read
		local = t.Load(data)
	})
	m.Run()
	fmt.Println("local =", local)
	// Output:
	// local = 23
}

// Example_barrierCost contrasts a fenced and an unfenced loop on one
// platform model: the publication fence after a remote store is the
// expensive pattern the paper's Observation 2 isolates.
func Example_barrierCost() {
	run := func(fence bool) float64 {
		m := sim.New(sim.Config{Plat: platform.Kunpeng916(), Mode: sim.WMM, Seed: 2})
		a := m.Alloc(1)
		b := m.Alloc(1)
		m.Spawn(0, func(t *sim.Thread) {
			for i := uint64(0); i < 300; i++ {
				t.Store(a, i) // likely an RMR: the peer shares this line
				if fence {
					t.Barrier(isa.DMBFull)
				}
				t.Store(b, i)
				t.Nops(10)
			}
		})
		m.Spawn(36, func(t *sim.Thread) {
			for i := uint64(0); i < 300; i++ {
				t.Load(a)
				t.Nops(10)
			}
		})
		return m.Run()
	}
	unfenced, fenced := run(false), run(true)
	fmt.Println("fenced loop is slower:", fenced > 2*unfenced)
	// Output:
	// fenced loop is slower: true
}
