package sim

import (
	"math/rand"
	"testing"

	"armbar/internal/platform"
	"armbar/internal/topo"
)

// TestEventHeapYieldsOrder checks the concrete heap against its
// contract: pops come out in (time, seq) order with no further
// sorting needed by the drain.
func TestEventHeapYieldsOrder(t *testing.T) {
	var h eventHeap
	rng := rand.New(rand.NewSource(1))
	const n = 4096
	for i := 0; i < n; i++ {
		h.push(&event{time: float64(rng.Intn(200)), seq: uint64(i)})
	}
	prevT, prevS := -1.0, uint64(0)
	for h.len() > 0 {
		e := h.pop()
		if e.time < prevT || (e.time == prevT && e.seq <= prevS && prevT >= 0) {
			t.Fatalf("heap out of order: (%g,%d) after (%g,%d)", e.time, e.seq, prevT, prevS)
		}
		prevT, prevS = e.time, e.seq
	}
}

// TestEventHeapReleasesBacking checks the hygiene fix: after a burst
// of pending events drains, the heap must not keep its high-water
// backing array for the rest of the run.
func TestEventHeapReleasesBacking(t *testing.T) {
	var h eventHeap
	const burst = 8192
	for i := 0; i < burst; i++ {
		h.push(&event{time: float64(i), seq: uint64(i)})
	}
	if cap(h.s) < burst {
		t.Fatalf("setup: cap %d, want >= %d", cap(h.s), burst)
	}
	for h.len() > 0 {
		h.pop()
	}
	if cap(h.s) > 4*shrinkCap {
		t.Errorf("drained heap retains cap %d, want <= %d", cap(h.s), 4*shrinkCap)
	}
}

// TestLongRunHeapStaysBounded runs a store-heavy multi-thread machine
// long enough that an unbounded structure would show, then checks both
// the heap backing store and the event free list stayed capped: a long
// run must not grow either monotonically.
func TestLongRunHeapStaysBounded(t *testing.T) {
	m := New(Config{Plat: platform.Kunpeng916(), Seed: 3, MaxTime: 1e15})
	const threads, stores = 4, 20000
	addrs := make([]uint64, threads)
	for i := range addrs {
		addrs[i] = m.Alloc(1)
	}
	for i := 0; i < threads; i++ {
		addr := addrs[i]
		m.Spawn(topo.CoreID(i*4), func(th *Thread) { // one cluster apart each
			for s := 0; s < stores; s++ {
				th.Store(addr, uint64(s))
			}
		})
	}
	m.Run()
	// The live event population is bounded by the store buffers
	// (threads × StoreBufferEntries = 96 here), so both retained
	// structures must stay in that ballpark regardless of run length.
	if cap(m.events.s) > 4*shrinkCap {
		t.Errorf("event heap backing store grew to %d, want <= %d", cap(m.events.s), 4*shrinkCap)
	}
	if len(m.freeEv) > maxFreeEvents {
		t.Errorf("free list grew to %d, want <= %d", len(m.freeEv), maxFreeEvents)
	}
	if len(m.freeEv) == 0 {
		t.Error("free list empty after a store-heavy run: events are not being recycled")
	}
}
