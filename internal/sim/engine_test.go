package sim

import (
	"strings"
	"testing"

	"armbar/internal/platform"
)

// Edge cases of the direct-dispatch scheduler: threads finishing while
// others are parked, the watchdog firing from a multi-thread dispatch,
// the store-buffer-full retry loop, and the dispatch counters.

func TestThreadFinishesWhileOthersParked(t *testing.T) {
	m := newTestMachine(WMM, 5)
	a, b, c := m.Alloc(1), m.Alloc(1), m.Alloc(1)
	var short, long1, long2 uint64
	// The short thread retires after one op while both long threads
	// still have work parked; finishThread must hand the machine to the
	// new minimum or the run deadlocks.
	m.Spawn(0, func(th *Thread) {
		short = th.FetchAdd(a, 1)
	})
	m.Spawn(4, func(th *Thread) {
		for i := 0; i < 200; i++ {
			th.Store(b, uint64(i))
			th.Nops(3)
		}
		long1 = th.Load(b)
	})
	m.Spawn(8, func(th *Thread) {
		for i := 0; i < 200; i++ {
			th.Store(c, uint64(i))
			th.Nops(3)
		}
		long2 = th.Load(c)
	})
	elapsed := m.Run()
	if elapsed <= 0 {
		t.Fatalf("elapsed = %v, want > 0", elapsed)
	}
	if short != 0 || long1 != 199 || long2 != 199 {
		t.Fatalf("results = %d, %d, %d; want 0, 199, 199", short, long1, long2)
	}
	if m.Directory().Committed(a) != 1 {
		t.Fatalf("committed(a) = %d, want 1", m.Directory().Committed(a))
	}
}

func TestWatchdogFiresWithThreadsParked(t *testing.T) {
	// Unlike TestWatchdogPanicsOnStuckSpin (one thread, solo fast
	// path), this pins two live threads in the run queue so the
	// watchdog triggers from the parked/woken dispatch path; the panic
	// must still surface from Run on the caller's goroutine.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected watchdog panic")
		}
		if !strings.Contains(r.(string), "watchdog") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	m := New(Config{Plat: platform.RaspberryPi4(), Mode: WMM, Seed: 3, MaxTime: 1e6})
	a, b := m.Alloc(1), m.Alloc(1)
	spin := func(addr uint64) func(*Thread) {
		return func(th *Thread) {
			for th.Load(addr) != 99 { // never satisfied
			}
		}
	}
	m.Spawn(0, spin(a))
	m.Spawn(1, spin(b))
	m.Run()
}

func TestStoreBufferFullRetry(t *testing.T) {
	// A store burst far beyond the buffer capacity forces process to
	// return false (issue stalls until a slot drains); under direct
	// dispatch the thread must stay queued with its advanced clock and
	// retry, never losing a store.
	m := newTestMachine(WMM, 9)
	entries := m.cfg.Plat.Cost.StoreBufferEntries
	burst := 6 * entries
	a := m.Alloc(burst)
	peer := m.Alloc(1)
	m.Spawn(0, func(th *Thread) {
		for i := 0; i < burst; i++ {
			th.Store(a+uint64(i)<<6, uint64(i)+1)
		}
	})
	// A second thread keeps the run queue in play so retries exercise
	// the heap-fix path rather than the solo loop.
	m.Spawn(4, func(th *Thread) {
		for i := 0; i < burst; i++ {
			th.Store(peer, uint64(i))
		}
	})
	m.Run()
	for i := 0; i < burst; i++ {
		if got := m.Directory().Committed(a + uint64(i)<<6); got != uint64(i)+1 {
			t.Fatalf("committed(line %d) = %d, want %d", i, got, i+1)
		}
	}
	if got := m.Stats().MaxStoreBuf; got != entries {
		t.Fatalf("MaxStoreBuf = %d, want the full capacity %d", got, entries)
	}
}

func TestDispatchCountersSolo(t *testing.T) {
	m := newTestMachine(WMM, 1)
	a := m.Alloc(1)
	const ops = 50
	m.Spawn(0, func(th *Thread) {
		for i := 0; i < ops; i++ {
			th.Load(a)
		}
	})
	m.Run()
	s := m.Stats()
	// One thread serves every op: only the first changes the serving
	// thread, everything after runs inline.
	if s.ParkWakes != 1 || s.InlineDispatches != ops-1 {
		t.Fatalf("solo counters = inline %d / wakes %d, want %d / 1",
			s.InlineDispatches, s.ParkWakes, ops-1)
	}
}

func TestDispatchCountersTwoThreads(t *testing.T) {
	run := func() Stats {
		m := newTestMachine(WMM, 13)
		a, b := m.Alloc(1), m.Alloc(1)
		body := func(addr uint64) func(*Thread) {
			return func(th *Thread) {
				for i := 0; i < 100; i++ {
					th.Load(addr)
				}
			}
		}
		m.Spawn(0, body(a))
		m.Spawn(4, body(b))
		m.Run()
		return m.Stats()
	}
	s := run()
	if s.InlineDispatches+s.ParkWakes != 200 {
		t.Fatalf("inline %d + wakes %d = %d, want 200 (one per op)",
			s.InlineDispatches, s.ParkWakes, s.InlineDispatches+s.ParkWakes)
	}
	if s.ParkWakes < 2 {
		t.Fatalf("ParkWakes = %d, want >= 2 with two interleaving threads", s.ParkWakes)
	}
	// The split is derived from the service order, so it must be as
	// deterministic as the rest of Stats.
	if s2 := run(); s2 != s {
		t.Fatalf("dispatch counters not deterministic:\n%+v\n%+v", s, s2)
	}
}
