// Package sim is an execution-driven, discrete-event simulator of an
// ARM-style weakly-ordered multiprocessor. Simulated threads are
// ordinary Go closures running against a *Thread handle; every memory
// access, barrier, or batch of local work enters the machine's
// direct-dispatch scheduler (see sched.go): the machine is a monitor,
// and the calling thread executes its own op inline as soon as it is
// the runnable thread with the smallest virtual time — parking on a
// per-thread wait slot only when another thread must run first. Given
// one seed, a run is fully deterministic.
//
// The model implements the mechanisms the paper identifies as the
// sources of barrier cost on real ARM silicon:
//
//   - per-core bounded store buffers with non-FIFO drain (WMM mode) or
//     forced in-order drain (TSO mode);
//   - a coherence directory where lines ping-pong between cores, making
//     accesses remote memory references (RMRs) with distance-dependent
//     latency;
//   - delayed invalidation processing, so loads can observe stale values
//     until an ordering point (the observable face of load reordering);
//   - ACE barrier transactions: DMB waits for outstanding snoops plus a
//     round trip to the bi-section boundary spanned by the communicating
//     cores, DSB always pays the trip to the domain boundary.
package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"armbar/internal/ace"
	"armbar/internal/mesi"
	"armbar/internal/platform"
	"armbar/internal/topo"
)

// Mode selects the memory consistency model being simulated.
type Mode int

const (
	// WMM is the ARM weakly-ordered memory model.
	WMM Mode = iota
	// TSO is total store order (x86-like): FIFO store buffer with
	// forwarding, no stale reads.
	TSO
)

func (m Mode) String() string {
	if m == TSO {
		return "TSO"
	}
	return "WMM"
}

// Config parameterizes a Machine.
type Config struct {
	Plat *platform.Platform
	Mode Mode
	Seed int64
	// MaxTime aborts the run (with a panic describing the stuck state)
	// when any thread's virtual time exceeds it. Zero means the default
	// of 50e9 cycles.
	MaxTime float64
}

// Stats aggregates machine-wide counters for one run.
type Stats struct {
	Loads         uint64
	Stores        uint64
	Hits          uint64
	Misses        uint64
	StaleReads    uint64
	RMRStores     uint64
	BarrierStalls float64 // total cycles threads spent blocked in barriers
	MemTxns       uint64
	SyncTxns      uint64

	// Engine health counters (free with the scheduler's bookkeeping;
	// they feed the observability layer, see MetricsInto).
	EventAllocs  uint64 // commit events allocated fresh
	EventReuses  uint64 // commit events served from the free list
	MaxEventHeap int    // high-water pending-commit heap depth
	MaxStoreBuf  int    // high-water store-buffer occupancy (any thread)

	// Direct-dispatch scheduler counters, derived from the service
	// sequence (see noteServed): an op whose thread also ran the
	// previous op was processed inline with no goroutine handoff; a
	// change of serving thread implies one park and one wake.
	InlineDispatches uint64
	ParkWakes        uint64
}

// Machine is one simulated multiprocessor run.
type Machine struct {
	cfg  Config
	sys  *topo.System
	cost *platform.CostModel
	dir  *mesi.Directory
	fab  *ace.Fabric
	rng  *rand.Rand

	threads []*Thread
	span    topo.Distance // widest distance among spawned threads' cores

	// Arena slabs: threads and commit events are carved out of chunked
	// slabs owned by the machine, so constructing a machine for one
	// experiment cell performs a handful of slab allocations instead of
	// one heap object per thread and per in-flight store. Pointers into
	// a chunk stay valid because chunks are never reallocated, only new
	// ones appended. Thread slabs grow exponentially (threadChunkMin up
	// to threadChunkMax) so a 1024-thread machine costs a handful of
	// allocations, and entries are padded to whole cache lines so one
	// thread's scheduler atomics never false-share with its neighbor's.
	threadArena []paddedThread
	threadSlab  int // next thread slab size (0 = start at threadChunkMin)
	evArena     []event

	events  eventHeap
	eventSq uint64
	freeEv  []*event // recycled commit events (see newEvent/recycle)

	// Monitor state of the direct-dispatch scheduler (sched.go). mu
	// guards everything below plus all simulation structures; threads
	// mutate machine state only while holding it, one at a time, in
	// the deterministic min-(now, id) service order. The armvet
	// annotations make lockvet enforce that contract statically.
	mu         sync.Mutex
	runq       runHeap       // armvet:guardedby mu — live threads parked in dispatch
	alive      int           // armvet:guardedby mu — spawned minus finished threads
	lastServed *Thread       // armvet:guardedby mu — previous op's thread (see noteServed)
	runDone    chan struct{} // armvet:guardedby mu — closed when the last thread finishes
	fatal      any           // armvet:guardedby mu — panic value to re-raise from Run
	finish     float64       // armvet:guardedby mu — max thread completion time so far
	started    bool          // armvet:guardedby mu
	done       bool          // armvet:guardedby mu

	nextAddr uint64
	stats    Stats   // armvet:guardedby mu — snapshot readable after Run (see Stats)
	now      float64 // armvet:guardedby mu — time of the last processed operation
	tracer   Tracer
	profc    *ProfileCollector // latched from SetGlobalProfile at New; nil = dark
}

// New creates a machine for the given configuration.
func New(cfg Config) *Machine {
	if cfg.Plat == nil {
		panic("sim: Config.Plat is required")
	}
	if cfg.MaxTime == 0 {
		cfg.MaxTime = 50e9
	}
	m := &Machine{
		cfg:      cfg,
		sys:      cfg.Plat.Sys,
		cost:     &cfg.Plat.Cost,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		runDone:  make(chan struct{}),
		nextAddr: 1 << mesi.LineShift, // keep address 0 unused
	}
	m.dir = mesi.NewDirectory(m.sys)
	m.fab = ace.NewFabric(m.sys, m.cost)
	if f := machineTracerFactory.Load(); f != nil {
		if tr := (*f)(); tr != nil {
			m.tracer = tr
		}
	}
	m.profc = globalProfile.Load()
	return m
}

// Platform returns the platform the machine simulates.
func (m *Machine) Platform() *platform.Platform { return m.cfg.Plat }

// Mode returns the consistency model in effect.
func (m *Machine) Mode() Mode { return m.cfg.Mode }

// Directory exposes the coherence directory (read-only use intended).
func (m *Machine) Directory() *mesi.Directory { return m.dir }

// Alloc reserves n consecutive cache lines and returns the address of
// the first line. Each line is 64 bytes; place at most eight 8-byte
// variables per line, or use one line per variable to avoid false
// sharing.
func (m *Machine) Alloc(lines int) uint64 {
	if lines <= 0 {
		panic("sim: Alloc needs a positive line count")
	}
	a := m.nextAddr
	m.nextAddr += uint64(lines) << mesi.LineShift
	return a
}

// SetInitial initializes committed memory before the run starts.
func (m *Machine) SetInitial(addr, v uint64) {
	// Spawned threads' goroutines are already live and take m.mu in
	// dispatch, so the started check (and the directory write it
	// orders) must hold the lock too — lockvet caught the bare read.
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		panic("sim: SetInitial after Run")
	}
	m.dir.SetInitial(addr, v)
}

// Spawn starts a simulated thread pinned to the given core running fn.
// All Spawn calls must happen before Run. The goroutine starts
// immediately, but its operations are held parked until Run arms the
// scheduler.
func (m *Machine) Spawn(core topo.CoreID, fn func(*Thread)) *Thread {
	if int(core) < 0 || int(core) >= m.sys.NumCores() {
		panic(fmt.Sprintf("sim: core %d out of range", core))
	}
	t := newThread(m, len(m.threads), core)
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		panic("sim: Spawn after Run")
	}
	m.threads = append(m.threads, t)
	m.alive++
	m.mu.Unlock()
	go t.run(fn)
	return t
}

// Settle blocks until every spawned thread has issued its first
// operation and parked in the run queue awaiting Run. Spawn only
// starts goroutines; on a single-P runtime none of them get to run —
// and pay their one-time bookkeeping (execution environments, sudogs,
// run-queue growth) — until the spawner first blocks, which is
// normally inside Run. Benchmarks call Settle between spawning and
// starting the timer so the measured region holds steady-state work
// only. A no-op once every live thread is parked (or none were
// spawned); must not be called after Run.
func (m *Machine) Settle() {
	for {
		m.mu.Lock()
		parked := m.runq.len() == m.alive
		m.mu.Unlock()
		if parked {
			return
		}
		runtime.Gosched()
	}
}

// Run arms the scheduler, lets all spawned threads execute to
// completion (each processing its own ops inline, in min-(now, id)
// order — see sched.go), and returns the final virtual time (the max
// over thread completion times), in cycles. A fatal condition hit
// while a thread was dispatching (the MaxTime watchdog, a bad barrier
// value) re-panics here, on the caller's goroutine.
func (m *Machine) Run() float64 {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		panic("sim: Run called twice")
	}
	m.started = true
	// The communication span decides which bi-section boundary a DMB
	// transaction must reach (Obs 5).
	cores := make([]topo.CoreID, len(m.threads))
	for i, t := range m.threads {
		cores[i] = t.core
	}
	m.span = m.fab.Span(cores)
	if m.alive > 0 {
		// Threads that issued their first op before Run are parked in
		// the run queue; if every live thread is already there, hand
		// the machine to the minimum. Otherwise the last thread to
		// arrive in dispatch does so itself.
		if m.runq.len() == m.alive {
			m.runq.min().grant()
		}
		m.mu.Unlock()
		<-m.runDone
		m.mu.Lock()
	}
	if m.fatal != nil {
		m.mu.Unlock()
		panic(m.fatal)
	}
	finish := m.finish
	// Drain every remaining commit so directory state is final. The
	// heap yields commits in (time, seq) order directly; no further
	// sorting happens on the drain path.
	for m.events.len() > 0 {
		ev := m.events.pop()
		if ev.time > finish {
			finish = ev.time
		}
		m.apply(ev)
	}
	m.done = true
	m.stats.MemTxns = m.fab.MemTxns
	m.stats.SyncTxns = m.fab.SyncTxns
	m.now = finish
	m.mu.Unlock()
	if reg := globalMetrics.Load(); reg != nil {
		m.MetricsInto(reg)
	}
	if m.profc != nil {
		m.profc.fold(m)
	}
	return finish
}

// Stats returns the counters accumulated so far (complete after Run).
// Run's return synchronizes the snapshot; callers read it from the
// goroutine that called Run, not concurrently with it.
func (m *Machine) Stats() Stats { return m.stats } //armvet:ignore lockvet — post-Run snapshot read

// Seconds converts a cycle count on this machine to seconds.
func (m *Machine) Seconds(cycles float64) float64 {
	return cycles / (m.cost.FreqGHz * 1e9)
}

// retireStores applies all commit events scheduled at or before t.
func (m *Machine) retireStores(t float64) {
	for m.events.len() > 0 && m.events.min().time <= t {
		m.apply(m.events.pop())
	}
}

func (m *Machine) apply(ev *event) {
	m.dir.CommitStore(ev.core, ev.addr, ev.value, ev.time, m.invProc())
	ev.t.buf.Remove(ev.sbSeq)
	m.emit(ev.t, TraceCommit, ev.addr, ev.time, ev.time, "")
	m.recycle(ev)
}

// maxFreeEvents bounds the free list; the working set is already
// bounded by the sum of all store-buffer capacities, so the cap only
// guards against pathological configurations.
const maxFreeEvents = 1024

// threadChunkMin/Max and eventChunk size the arena slabs. The first
// thread slab covers the common machine shapes (2-thread models, small
// lock sweeps) in one allocation; each further slab doubles, capped so
// the scale-out shapes (64–1024 threads) amortize to a few slabs
// without overshooting by more than one cap's worth of memory. Event
// slabs amortize the pre-freelist warmup of the commit pipeline.
const (
	threadChunkMin = 8
	threadChunkMax = 256
	eventChunk     = 32
)

// threadLine is the false-sharing unit threads are padded to. A parked
// thread's gstate word is spun on and CAS'd by itself and its waker;
// rounding each arena entry to whole cache lines keeps that traffic off
// every other thread's hot state.
const threadLine = 64

// paddedThread separates adjacent arena threads by one full dead cache
// line. Any two bytes inside the same 64-byte-aligned line are less
// than threadLine apart, so a gap of at least threadLine guarantees no
// line ever holds live bytes of two threads — without computing
// Thread's exact size (a Sizeof-in-array-length here would form an
// invalid recursive type through Machine.threadArena). The 64-byte
// overhead is noise next to the multi-KB Thread.
type paddedThread struct {
	t Thread
	_ [threadLine]byte
}

// threadSlot carves one thread out of the machine's arena, growing the
// slab size exponentially between refills.
func (m *Machine) threadSlot() *Thread {
	if len(m.threadArena) == 0 {
		switch {
		case m.threadSlab == 0:
			m.threadSlab = threadChunkMin
		case m.threadSlab < threadChunkMax:
			m.threadSlab *= 2
		}
		m.threadArena = make([]paddedThread, m.threadSlab)
	}
	t := &m.threadArena[0].t
	m.threadArena = m.threadArena[1:]
	return t
}

// newEvent takes a commit event off the free list, or carves a fresh
// one out of the machine's arena.
//
// armvet:holds mu
func (m *Machine) newEvent() *event {
	if n := len(m.freeEv); n > 0 {
		e := m.freeEv[n-1]
		m.freeEv = m.freeEv[:n-1]
		m.stats.EventReuses++
		return e
	}
	m.stats.EventAllocs++
	if len(m.evArena) == 0 {
		m.evArena = make([]event, eventChunk) //armvet:ignore allocvet — freelist warmup, one slab per eventChunk fresh events
	}
	e := &m.evArena[0]
	m.evArena = m.evArena[1:]
	return e
}

// recycle returns an applied event to the free list.
func (m *Machine) recycle(e *event) {
	if len(m.freeEv) < maxFreeEvents {
		*e = event{}
		m.freeEv = append(m.freeEv, e)
	}
}

// invProc draws how long remote holders keep serving a stale copy
// after a commit: invalidation queues are processed at unpredictable
// points within the window (zero under TSO).
func (m *Machine) invProc() float64 {
	if m.cfg.Mode == TSO {
		return 0
	}
	return m.rng.Float64() * m.cost.InvalidationDelay
}

// armvet:holds mu
func (m *Machine) schedule(ev *event) {
	m.eventSq++
	ev.seq = m.eventSq
	m.events.push(ev)
	if d := m.events.len(); d > m.stats.MaxEventHeap {
		m.stats.MaxEventHeap = d
	}
}

func (m *Machine) stuckReport(t *Thread) string {
	var ids []int
	for _, th := range m.threads {
		if !th.finished {
			ids = append(ids, th.id)
		}
	}
	sort.Ints(ids)
	return fmt.Sprintf("sim: watchdog: thread %d (core %d) exceeded MaxTime=%g cycles; live threads %v — likely an unsatisfiable spin loop",
		t.id, t.core, m.cfg.MaxTime, ids)
}
