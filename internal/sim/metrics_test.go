package sim_test

import (
	"testing"

	"armbar/internal/isa"
	"armbar/internal/metrics"
	"armbar/internal/platform"
	"armbar/internal/sim"
)

// fencedRun drives one small two-thread message-passing machine and
// returns its final virtual time.
func fencedRun(reg *metrics.Registry, tracer sim.Tracer) (*sim.Machine, float64) {
	m := sim.New(sim.Config{Plat: platform.Kunpeng916(), Mode: sim.WMM, Seed: 7})
	if tracer != nil {
		m.SetTracer(tracer)
	}
	data, flag := m.Alloc(1), m.Alloc(1)
	m.Spawn(0, func(t *sim.Thread) {
		for i := uint64(1); i <= 30; i++ {
			t.Store(data, i)
			t.Barrier(isa.DMBSt)
			t.Store(flag, i)
			t.Nops(8)
		}
	})
	m.Spawn(32, func(t *sim.Thread) {
		for i := uint64(1); i <= 30; i++ {
			for t.Load(flag) < i {
				t.Nops(4)
			}
			t.Barrier(isa.DMBLd)
			t.Load(data)
		}
	})
	finish := m.Run()
	if reg != nil {
		m.MetricsInto(reg)
	}
	return m, finish
}

func TestStatsEngineCounters(t *testing.T) {
	m, _ := fencedRun(nil, nil)
	s := m.Stats()
	if s.MaxStoreBuf == 0 {
		t.Error("store-buffer high-water mark never recorded")
	}
	if s.MaxEventHeap == 0 {
		t.Error("event-heap high-water mark never recorded")
	}
	if s.EventAllocs+s.EventReuses != s.Stores {
		t.Errorf("every store schedules one commit event: allocs %d + reuses %d != stores %d",
			s.EventAllocs, s.EventReuses, s.Stores)
	}
	if s.EventReuses == 0 {
		t.Error("free list never hit across 60 stores")
	}
}

func TestMetricsInto(t *testing.T) {
	reg := metrics.NewRegistry()
	m, _ := fencedRun(reg, nil)
	s := m.Stats()
	snap := reg.Snapshot()
	if snap.Counters["sim_machines_total"] != 1 {
		t.Fatalf("machines counter = %d", snap.Counters["sim_machines_total"])
	}
	if snap.Counters["sim_loads_total"] != s.Loads || snap.Counters["sim_stores_total"] != s.Stores {
		t.Fatalf("registry loads/stores %d/%d, stats %d/%d",
			snap.Counters["sim_loads_total"], snap.Counters["sim_stores_total"], s.Loads, s.Stores)
	}
	if hr := snap.Gauges["sim_event_freelist_hit_rate"]; hr <= 0 || hr > 1 {
		t.Fatalf("free-list hit rate = %g, want (0, 1]", hr)
	}
	if snap.Gauges["sim_virtual_cycles_total"] <= 0 {
		t.Fatal("virtual cycles never accumulated")
	}
}

func TestGlobalMetricsHook(t *testing.T) {
	reg := metrics.NewRegistry()
	sim.SetGlobalMetrics(reg)
	defer sim.SetGlobalMetrics(nil)
	fencedRun(nil, nil)
	fencedRun(nil, nil)
	if got := reg.Snapshot().Counters["sim_machines_total"]; got != 2 {
		t.Fatalf("global registry saw %d machines, want 2", got)
	}
}

// countingTracer counts events without recording them.
type countingTracer struct{ n int }

func (c *countingTracer) Event(sim.TraceEvent) { c.n++ }

func TestMachineTracerFactory(t *testing.T) {
	ct := &countingTracer{}
	sim.SetMachineTracerFactory(func() sim.Tracer { return ct })
	defer sim.SetMachineTracerFactory(nil)
	fencedRun(nil, nil)
	if ct.n == 0 {
		t.Fatal("factory-installed tracer saw no events")
	}
}

func TestMetricsTracerHistograms(t *testing.T) {
	reg := metrics.NewRegistry()
	fencedRun(nil, sim.NewMetricsTracer(reg))
	snap := reg.Snapshot()
	for _, kind := range []string{"load", "store", "commit", "barrier", "work"} {
		h, ok := snap.Histograms[`sim_op_cycles{kind="`+kind+`"}`]
		if !ok || h.Count == 0 {
			t.Errorf("no latency histogram observations for kind %q", kind)
		}
	}
}

func TestObservabilityIsHarmless(t *testing.T) {
	// The same seed must produce the same virtual time dark, with a
	// global registry, and with a per-op metrics tracer.
	_, dark := fencedRun(nil, nil)
	reg := metrics.NewRegistry()
	sim.SetGlobalMetrics(reg)
	_, lit := fencedRun(nil, nil)
	sim.SetGlobalMetrics(nil)
	_, traced := fencedRun(nil, sim.NewMetricsTracer(reg))
	if dark != lit || dark != traced {
		t.Fatalf("observability changed results: dark %g, metrics %g, traced %g", dark, lit, traced)
	}
}
