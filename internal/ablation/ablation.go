// Package ablation studies how the simulator's own design parameters
// shape the reproduced results — the knobs DESIGN.md calls out. Each
// function sweeps one cost-model parameter and reports the headline
// metric it controls, so a reader can see which conclusions are robust
// to calibration and which are driven by a specific constant.
package ablation

import (
	"fmt"

	"armbar/internal/absmodel"
	"armbar/internal/isa"
	"armbar/internal/litmus"
	"armbar/internal/pc"
	"armbar/internal/platform"
	"armbar/internal/report"
	"armbar/internal/sim"
	"armbar/internal/topo"
)

// Options mirrors figures.Options on a smaller scale.
type Options struct {
	Quick bool
	Seed  int64
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

func (o Options) runs(full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

// AnomalyVsJitter sweeps the store-drain jitter and reports the
// message-passing anomaly rate: the litmus behavior (Table 1) exists
// *because* of non-FIFO drain, and vanishes as the jitter goes to zero
// only in combination with the invalidation window.
func AnomalyVsJitter(o Options) *report.Table {
	runs := o.runs(2000, 400)
	t := report.New("Ablation: MP anomaly rate vs drain jitter",
		"DrainJitter (cycles)", "anomalies", "rate")
	for _, j := range []float64{0, 10, 25, 50, 100, 200} {
		p := platform.Kunpeng916()
		p.Cost.DrainJitter = j
		res := litmus.Run(p, sim.WMM, litmus.MessagePassing(isa.None, isa.None), runs, o.seed())
		bad := res.Count["local=0"]
		t.Row(j, bad, float64(bad)/float64(runs))
	}
	t.Note = "non-FIFO drain is the dominant WMM mechanism here: with zero jitter the two equal-cost stores commit in issue order and the anomaly disappears"
	return t
}

// AnomalyVsInvalidationDelay sweeps the stale-read window.
func AnomalyVsInvalidationDelay(o Options) *report.Table {
	runs := o.runs(2000, 400)
	t := report.New("Ablation: MP anomaly rate vs invalidation-processing window",
		"InvalidationDelay (cycles)", "anomalies", "rate")
	for _, d := range []float64{0, 10, 20, 40, 80, 160} {
		p := platform.Kunpeng916()
		p.Cost.InvalidationDelay = d
		res := litmus.Run(p, sim.WMM, litmus.MessagePassing(isa.None, isa.None), runs, o.seed())
		bad := res.Count["local=0"]
		t.Row(d, bad, float64(bad)/float64(runs))
	}
	return t
}

// TippingVsMissLatency sweeps the cross-node miss latency and reports
// where the Figure-4 tipping point lands: the paper's "700 nops" is a
// direct readout of the cross-node snoop time.
func TippingVsMissLatency(o Options) *report.Table {
	t := report.New("Ablation: tipping point vs cross-node miss latency",
		"MissCrossNode (cycles)", "tipping nops", "full-1 : full-2")
	for _, miss := range []float64{120, 180, 230, 320, 450} {
		p := platform.Kunpeng916()
		p.Cost.MissCrossNode = miss
		cross := [2]topo.CoreID{p.Sys.NodeCores(0)[0], p.Sys.NodeCores(1)[0]}
		n, ratio := absmodel.TippingPoint(p, cross, 0.95, o.seed())
		t.Row(miss, n, ratio)
	}
	t.Note = "the tipping padding tracks the snoop latency; the ½ ratio is invariant (Obs 2)"
	return t
}

// PilotGainVsStoreBuffer sweeps the store-buffer depth: the publication
// fence hurts by serializing commits, which only throttles the producer
// once the buffer is too shallow to absorb the backlog.
func PilotGainVsStoreBuffer(o Options) *report.Table {
	msgs := o.runs(1500, 400)
	t := report.New("Ablation: producer-consumer Pilot gain vs store-buffer entries",
		"StoreBufferEntries", "DMBld-DMBst (Mmsg/s)", "Pilot (Mmsg/s)", "gain")
	for _, entries := range []int{2, 4, 8, 16, 24, 48} {
		p := platform.Kunpeng916()
		p.Cost.StoreBufferEntries = entries
		prod := p.Sys.NodeCores(0)[0]
		cons := p.Sys.NodeCores(1)[0]
		best := pc.Run(pc.Config{Plat: p, Producer: prod, Consumer: cons,
			Mode: pc.Classic, Combo: pc.Combo{Avail: isa.DMBLd, Publish: isa.DMBSt},
			Messages: msgs, Seed: o.seed()}).Throughput()
		pil := pc.Run(pc.Config{Plat: p, Producer: prod, Consumer: cons,
			Mode: pc.Pilot, Messages: msgs, Seed: o.seed()}).Throughput()
		t.Row(entries, best/1e6, pil/1e6, fmt.Sprintf("%.2fx", pil/best))
	}
	return t
}

// BarrierCostVsSyncTxn sweeps the DSB domain-boundary cost and reports
// the Figure-2 DSB:no-barrier gap — the one number Obs 1 hangs on.
func BarrierCostVsSyncTxn(o Options) *report.Table {
	iters := o.runs(1500, 400)
	t := report.New("Ablation: intrinsic DSB gap vs SyncTxn",
		"SyncTxn (cycles)", "No Barrier (Mloops/s)", "DSB full (Mloops/s)", "gap")
	for _, txn := range []float64{60, 120, 240, 480, 960} {
		p := platform.Kunpeng916()
		p.Cost.SyncTxn = txn
		cores := [2]topo.CoreID{p.Sys.NodeCores(0)[0], p.Sys.NodeCores(0)[4]}
		none := absmodel.Run(absmodel.Config{Plat: p, Cores: cores, Pattern: absmodel.NoMem,
			Variant: absmodel.Variant{Barrier: isa.None}, Nops: 30, Iters: iters, Seed: o.seed()}).Throughput()
		dsb := absmodel.Run(absmodel.Config{Plat: p, Cores: cores, Pattern: absmodel.NoMem,
			Variant: absmodel.Variant{Barrier: isa.DSBFull, Loc: absmodel.Loc2}, Nops: 30,
			Iters: iters, Seed: o.seed()}).Throughput()
		t.Row(txn, none/1e6, dsb/1e6, fmt.Sprintf("%.1fx", none/dsb))
	}
	return t
}

// All returns every ablation table.
func All(o Options) []*report.Table {
	return []*report.Table{
		AnomalyVsJitter(o),
		AnomalyVsInvalidationDelay(o),
		TippingVsMissLatency(o),
		PilotGainVsStoreBuffer(o),
		BarrierCostVsSyncTxn(o),
	}
}
