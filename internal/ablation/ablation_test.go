package ablation

import (
	"strconv"
	"testing"
)

var quick = Options{Quick: true, Seed: 9}

func TestAnomalyGrowsWithJitter(t *testing.T) {
	tb := AnomalyVsJitter(quick)
	first, _ := strconv.ParseFloat(tb.Cell(0, 2), 64)
	last, _ := strconv.ParseFloat(tb.Cell(tb.Rows()-1, 2), 64)
	if last <= first {
		t.Errorf("anomaly rate should grow with drain jitter: %v -> %v", first, last)
	}
}

func TestTippingTracksMissLatency(t *testing.T) {
	tb := TippingVsMissLatency(quick)
	var prev float64 = -1
	for r := 0; r < tb.Rows(); r++ {
		n, err := strconv.ParseFloat(tb.Cell(r, 1), 64)
		if err != nil || n < 0 {
			t.Fatalf("row %d: no tipping point found (%q)", r, tb.Cell(r, 1))
		}
		if n < prev {
			t.Errorf("tipping padding should grow with miss latency: row %d: %v after %v", r, n, prev)
		}
		prev = n
		ratio, _ := strconv.ParseFloat(tb.Cell(r, 2), 64)
		if ratio < 0.3 || ratio > 0.7 {
			t.Errorf("row %d: tipping ratio %v escaped the ≈½ band", r, ratio)
		}
	}
}

func TestDSBGapGrowsWithSyncTxn(t *testing.T) {
	tb := BarrierCostVsSyncTxn(quick)
	var prev float64
	for r := 0; r < tb.Rows(); r++ {
		dsb, _ := strconv.ParseFloat(tb.Cell(r, 2), 64)
		if r > 0 && dsb >= prev {
			t.Errorf("DSB throughput should fall as SyncTxn grows: row %d %v >= %v", r, dsb, prev)
		}
		prev = dsb
	}
}

func TestPilotGainTablePopulated(t *testing.T) {
	tb := PilotGainVsStoreBuffer(quick)
	if tb.Rows() != 6 {
		t.Fatalf("rows = %d, want 6", tb.Rows())
	}
}
