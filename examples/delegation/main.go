// Delegation example: runs the simulated delegation-lock benchmark on
// the Kunpeng916 server model, comparing DSMSynch with and without
// Pilot on a shared hash table — the Figure 8c scenario on a small
// scale.
//
// Run with: go run ./examples/delegation
package main

import (
	"fmt"

	"armbar/internal/ds"
	"armbar/internal/locks"
	"armbar/internal/platform"
)

func main() {
	fmt.Println("hash table (512 preloaded, 12 threads, Kunpeng916 model)")
	fmt.Printf("%-10s %-10s %-14s %-8s\n", "buckets", "lock", "Mops/s", "valid")
	for _, buckets := range []int{4, 32, 256} {
		for _, kind := range []locks.Kind{locks.DSMSynch, locks.DSMSynchPilot} {
			r := ds.Run(ds.Config{
				Plat:    platform.Kunpeng916(),
				Kind:    kind,
				Struct:  ds.HashTable,
				Threads: 12,
				Rounds:  10,
				Preload: 512,
				Buckets: buckets,
				Seed:    1,
			})
			fmt.Printf("%-10d %-10s %-14.3f %-8v\n",
				buckets, kind, r.Throughput()/1e6, r.Valid)
		}
	}
	fmt.Println("\nexpected shape (paper Fig 8c): Pilot wins at few buckets,")
	fmt.Println("the gain fades as buckets dilute per-lock contention.")
}
