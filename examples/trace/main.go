// Trace example: record a producer-consumer exchange on the Kunpeng916
// model, print the per-kind/per-thread cost breakdown and the hottest
// cache lines, and write a Chrome-trace JSON (open in Perfetto or
// chrome://tracing) showing the barrier stalls.
//
// Run with: go run ./examples/trace [out.json]
package main

import (
	"fmt"
	"os"

	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/sim"
	"armbar/internal/trace"
)

func main() {
	rec := trace.NewRecorder(0)
	p := platform.Kunpeng916()
	m := sim.New(sim.Config{Plat: p, Mode: sim.WMM, Seed: 11})
	m.SetTracer(rec)

	data := m.Alloc(1)
	flag := m.Alloc(1)
	const msgs = 100

	m.Spawn(p.Sys.NodeCores(0)[0], func(t *sim.Thread) {
		for i := uint64(1); i <= msgs; i++ {
			t.Nops(40)
			t.Store(data, i*7)
			t.Barrier(isa.DMBSt) // the Obs-2 barrier after the RMR
			t.Store(flag, i)
		}
	})
	m.Spawn(p.Sys.NodeCores(1)[0], func(t *sim.Thread) {
		for i := uint64(1); i <= msgs; i++ {
			for t.Load(flag) < i {
				t.Nops(4)
			}
			t.Barrier(isa.DMBLd)
			t.Load(data)
		}
	})
	cycles := m.Run()

	fmt.Printf("run: %d messages in %.0f cycles (%.1f cycles/msg)\n\n",
		msgs, cycles, cycles/msgs)
	fmt.Print(rec.Summarize().String())

	fmt.Println("\nhot cache lines (commits):")
	for _, h := range rec.HotLines(4) {
		fmt.Printf("  line %4d: %d commits\n", h.Line, h.Commits)
	}

	out := "pilot-trace.json"
	if len(os.Args) > 1 {
		out = os.Args[1]
	}
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := rec.WriteChromeJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
	fmt.Printf("\nChrome trace written to %s (%d events)\n", out, len(rec.Events()))
}
