// Characterize example: define a custom platform model and run the
// paper's abstracted two-store model on it, printing the barrier cost
// ladder. Use this as a template to explore how bus parameters shape
// barrier behavior.
//
// Run with: go run ./examples/characterize
package main

import (
	"fmt"

	"armbar/internal/absmodel"
	"armbar/internal/isa"
	"armbar/internal/platform"
	"armbar/internal/topo"
)

// custom builds a made-up 2-node, 16-core platform with an
// exaggeratedly slow interconnect, to contrast with the presets.
func custom() *platform.Platform {
	s := topo.New()
	for node := 0; node < 2; node++ {
		for cl := 0; cl < 2; cl++ {
			s.AddCluster(node, topo.Big, 4)
		}
	}
	return &platform.Platform{
		Name:         "CustomSlowBus",
		Arch:         "hypothetical 4x4",
		Interconnect: "slow mesh",
		Sys:          s,
		Cost: platform.CostModel{
			FreqGHz:            2.0,
			IssueWidth:         2,
			CacheHit:           3,
			StoreBufferLatency: 1,
			StoreBufferEntries: 16,
			DrainDelay:         10,
			DrainJitter:        40,
			MissSameCluster:    60,
			MissSameNode:       120,
			MissCrossNode:      500,
			InvalidationDelay:  60,

			BarrierTxnSameCluster: 30,
			BarrierTxnSameNode:    60,
			BarrierTxnCrossNode:   400,
			SyncTxn:               900,

			PipelineFlush:  25,
			STLRPenaltyMin: 200,
			STLRPenaltyMax: 800,
		},
	}
}

func main() {
	p := custom()
	cross := [2]topo.CoreID{p.Sys.NodeCores(0)[0], p.Sys.NodeCores(1)[0]}
	fmt.Printf("two-store abstracted model on %s, cross-node, 300 nops\n\n", p.Name)
	fmt.Printf("%-14s %12s\n", "barrier", "Mloops/s")
	for _, v := range absmodel.Figure3Variants() {
		r := absmodel.Run(absmodel.Config{
			Plat:    p,
			Cores:   cross,
			Pattern: absmodel.TwoStores,
			Variant: v,
			Nops:    300,
			Seed:    9,
		})
		fmt.Printf("%-14s %12.2f\n", v.Name(), r.Throughput()/1e6)
	}
	fmt.Println("\nsuggestion for store->store ordering:",
		isa.Best(isa.Store, isa.Stores))
	n, ratio := absmodel.TippingPoint(p, cross, 0.95, 9)
	fmt.Printf("tipping point: %d nops hide DMB full at LOC_2 (full-1:full-2 = %.2f)\n", n, ratio)
}
