// Quickstart for the Pilot library: a real (non-simulated) SPSC
// exchange over core.Word and core.Ring using sync/atomic — no mutex,
// no publication barrier, the data word itself is the ready signal.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"armbar/internal/core"
)

func main() {
	// --- Single-slot Pilot channel ---------------------------------
	// The sender piggybacks the "message ready" flag onto the payload:
	// one atomic 64-bit store publishes both at once. The ack channel
	// supplies the backpressure a single slot needs.
	s, r := core.NewPair(1)
	ack := make(chan struct{}, 1)
	ack <- struct{}{}
	go func() {
		for i := uint64(1); i <= 5; i++ {
			<-ack
			s.Send(i * 100)
		}
	}()
	for i := 0; i < 5; i++ {
		fmt.Println("word recv:", r.Recv())
		ack <- struct{}{}
	}

	// --- Pilot ring buffer -----------------------------------------
	// The buffered form: slot stores are the availability signals, so
	// the producer never issues a barrier between "write data" and
	// "publish"; the consumer never reads a producer counter.
	ring := core.NewRing(8, 7)
	prod := ring.Producer()
	cons := ring.Consumer()
	const n = 1_000_000
	start := time.Now()
	go func() {
		for i := uint64(0); i < n; i++ {
			prod.Send(i)
		}
	}()
	var sum uint64
	for i := 0; i < n; i++ {
		sum += cons.Recv()
	}
	elapsed := time.Since(start)
	fmt.Printf("ring: %d msgs in %v (%.1f M msg/s), checksum %d\n",
		n, elapsed.Round(time.Millisecond),
		float64(n)/elapsed.Seconds()/1e6, sum)

	// --- Batched Pilot ----------------------------------------------
	// Messages longer than 64 bits: Pilot applies per 8-byte slice with
	// per-slice fallback flags, still barrier-free.
	bs, br := core.NewBatchPair(4, 3)
	done := make(chan struct{})
	go func() {
		bs.Send([]uint64{10, 20, 30, 40})
		close(done)
	}()
	out := make([]uint64, 4)
	br.Recv(out)
	<-done
	fmt.Println("batch recv:", out)
}
