// Pipeline example: a three-stage, dedup-style compressor connected by
// Pilot ring buffers (real goroutines, no simulator). Each hop avoids
// the publication barrier the conventional counter+flag protocol would
// need on a weakly-ordered machine, and touches fewer cache lines.
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"
	"time"

	"armbar/internal/core"
)

const (
	chunks = 200_000
	eos    = ^uint64(0) // end-of-stream sentinel
)

// chunkValue synthesizes chunk i's fingerprint; every fourth chunk
// repeats an earlier one so deduplication has hits.
func chunkValue(i int) uint64 {
	if i%4 == 3 {
		return chunkValue(i / 2 >> 1 << 1)
	}
	return uint64(i)*0x9E3779B97F4A7C15 + 1
}

func main() {
	hop1 := core.NewRing(64, 1)
	hop2 := core.NewRing(64, 2)

	// Stage 1: chunker.
	go func() {
		p := hop1.Producer()
		for i := 0; i < chunks; i++ {
			p.Send(chunkValue(i))
		}
		p.Send(eos)
	}()

	// Stage 2: dedup.
	go func() {
		c := hop1.Consumer()
		p := hop2.Producer()
		seen := make(map[uint64]bool, chunks)
		for {
			v := c.Recv()
			if v == eos {
				p.Send(eos)
				return
			}
			if seen[v] {
				continue
			}
			seen[v] = true
			p.Send(v)
		}
	}()

	// Stage 3: "compress" (fold into a checksum).
	start := time.Now()
	c := hop2.Consumer()
	var checksum uint64
	unique := 0
	for {
		v := c.Recv()
		if v == eos {
			break
		}
		checksum ^= v * 0x94D049BB133111EB
		unique++
	}
	elapsed := time.Since(start)

	// Sequential reference for validation.
	seen := make(map[uint64]bool, chunks)
	var want uint64
	wantUnique := 0
	for i := 0; i < chunks; i++ {
		v := chunkValue(i)
		if !seen[v] {
			seen[v] = true
			wantUnique++
			want ^= v * 0x94D049BB133111EB
		}
	}

	fmt.Printf("pipeline: %d chunks, %d unique, %.1f M chunks/s\n",
		chunks, unique, float64(chunks)/elapsed.Seconds()/1e6)
	if checksum == want && unique == wantUnique {
		fmt.Println("output matches the sequential reference ✓")
	} else {
		fmt.Printf("MISMATCH: got (%x,%d) want (%x,%d)\n", checksum, unique, want, wantUnique)
	}
}
