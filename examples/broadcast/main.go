// Broadcast example: a single writer publishes configuration epochs to
// several readers through core.Broadcast (Pilot's single-writer
// many-reader form), while worker goroutines funnel updates to a shared
// counter through core.Combiner (flat combining with Pilot responses).
// Everything runs on real goroutines and sync/atomic — no simulator.
//
// Run with: go run ./examples/broadcast
package main

import (
	"fmt"
	"sync"
	"time"

	"armbar/internal/core"
)

func main() {
	// --- Broadcast: one writer, three readers --------------------
	b := core.NewBroadcast(1)
	w := b.Writer()
	const epochs = 100_000
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		r := r
		reader := b.Reader()
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for last < epochs {
				if v, ok := reader.Poll(); ok {
					if v < last {
						panic("epoch went backwards")
					}
					last = v
				}
			}
			fmt.Printf("reader %d caught epoch %d\n", r, last)
		}()
	}
	start := time.Now()
	for e := uint64(1); e <= epochs; e++ {
		w.Publish(e)
	}
	wg.Wait()
	fmt.Printf("broadcast: %d epochs in %v\n\n", epochs, time.Since(start).Round(time.Millisecond))

	// --- Combiner: four clients, one shared counter ---------------
	c := core.NewCombiner(4, 2)
	var counter uint64
	const opsPer = 50_000
	start = time.Now()
	var cwg sync.WaitGroup
	for i := 0; i < 4; i++ {
		slot := c.Register()
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for j := 0; j < opsPer; j++ {
				slot.Do(func() uint64 {
					counter++
					return counter
				})
			}
		}()
	}
	cwg.Wait()
	fmt.Printf("combiner: counter=%d (want %d) in %v\n",
		counter, 4*opsPer, time.Since(start).Round(time.Millisecond))
}
