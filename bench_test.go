// Package armbar's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation. Each iteration
// regenerates the figure at quick scale and reports the headline shape
// metric alongside ns/op, so `go test -bench=.` both exercises the
// harness and surfaces the reproduced trends.
//
// Regenerate the full-scale tables with: go run ./cmd/armbar all
package armbar_test

import (
	"strconv"
	"testing"

	"armbar/internal/figures"
	"armbar/internal/report"
	"armbar/internal/runner"
)

// benchPool fans every benchmark's experiment cells out over
// GOMAXPROCS workers, exactly as `armbar -par` does. It lives for the
// whole benchmark process.
var benchPool = runner.New(0)

// quick returns the scaled-down options used for bench iterations,
// varying the seed per iteration so results are not trivially cached.
func quick(i int) figures.Options {
	return figures.Options{Quick: true, Seed: int64(100 + i), Pool: benchPool}
}

// BenchmarkRunnerAll regenerates every registered experiment through
// the parallel runner — the `armbar all -quick` workload as one
// benchmark, so the experiment engine's wall-clock trajectory is
// tracked alongside the per-figure shape metrics below. Run with
// -benchtime 1x; one iteration is a full quick regeneration.
func BenchmarkRunnerAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := quick(i)
		tables := 0
		for _, exp := range figures.Registry() {
			ts := exp.Gen(o)
			if len(ts) != exp.Tables {
				b.Fatalf("%s emitted %d tables, registry says %d", exp.Name, len(ts), exp.Tables)
			}
			for _, t := range ts {
				if t.Rows() == 0 {
					b.Fatalf("%s produced an empty table", exp.Name)
				}
			}
			tables += len(ts)
		}
		b.ReportMetric(float64(tables), "tables")
	}
}

// cell parses a float cell of t.
func cell(b *testing.B, t *report.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(t.Cell(row, col), 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, t.Cell(row, col), err)
	}
	return v
}

func BenchmarkTable1MessagePassing(b *testing.B) {
	var anomalies float64
	for i := 0; i < b.N; i++ {
		t := figures.Table1(quick(i))
		anomalies += cell(b, t, 1, 2) // WMM row, anomaly count
		if got := t.Cell(0, 2); got != "0" {
			b.Fatalf("TSO must forbid the anomaly, saw %s", got)
		}
	}
	b.ReportMetric(anomalies/float64(b.N), "wmm-anomalies/run")
}

func BenchmarkTable3Suggestions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := figures.Table3(quick(i))
		if t.Rows() != 5 {
			b.Fatalf("suggestion matrix rows = %d, want 5", t.Rows())
		}
	}
}

func BenchmarkFig2IntrinsicOverhead(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ts := figures.Fig2(quick(i))
		t := ts[0] // Kunpeng916
		// DSB (row 4) vs No Barrier (row 0) at the middle nop count.
		ratio += cell(b, t, 0, 2) / cell(b, t, 4, 2)
	}
	b.ReportMetric(ratio/float64(b.N), "nobarrier/dsb-x")
}

func BenchmarkFig3TwoStores(b *testing.B) {
	var locRatio float64
	for i := 0; i < b.N; i++ {
		ts := figures.Fig3(quick(i))
		t := ts[1] // cross-node subfigure
		// DMB full-1 (row 1) vs DMB full-2 (row 2) at the largest padding.
		locRatio += cell(b, t, 1, 3) / cell(b, t, 2, 3)
	}
	b.ReportMetric(locRatio/float64(b.N), "full1/full2")
}

func BenchmarkFig4TippingPoint(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		t := figures.Fig4(quick(i))
		ratio += cell(b, t, 0, 2)
	}
	b.ReportMetric(ratio/float64(b.N), "tipping-ratio")
}

func BenchmarkFig5LoadStore(b *testing.B) {
	var depVsDSB float64
	for i := 0; i < b.N; i++ {
		t := figures.Fig5(quick(i))
		// ADDR DEP (last row) vs DSB full-1 (row 5).
		depVsDSB += cell(b, t, t.Rows()-1, 1) / cell(b, t, 5, 1)
	}
	b.ReportMetric(depVsDSB/float64(b.N), "addrdep/dsb1-x")
}

func BenchmarkFig6aProducerConsumer(b *testing.B) {
	var bestCombo float64
	for i := 0; i < b.N; i++ {
		t := figures.Fig6a(quick(i))
		// Cross-node row: DMB ld - DMB st normalized (col 3).
		bestCombo += cell(b, t, 1, 3)
	}
	b.ReportMetric(bestCombo/float64(b.N), "ldst-vs-fullfull-x")
}

func BenchmarkFig6bPilot(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		t := figures.Fig6b(quick(i))
		// Cross-node row: Pilot (col 3) over best combo (col 1).
		gain += cell(b, t, 1, 3) / cell(b, t, 1, 1)
	}
	b.ReportMetric(gain/float64(b.N), "pilot-gain-cross-x")
}

func BenchmarkFig6cBatching(b *testing.B) {
	var decline float64
	for i := 0; i < b.N; i++ {
		t := figures.Fig6c(quick(i))
		// Cross-node row: speedup at 1 word (col 1) vs 32 words (col 6).
		decline += cell(b, t, 1, 1) / cell(b, t, 1, 6)
	}
	b.ReportMetric(decline/float64(b.N), "gain-1w/32w")
}

func BenchmarkFig6dDedup(b *testing.B) {
	var rbp float64
	for i := 0; i < b.N; i++ {
		t := figures.Fig6d(quick(i))
		rbp += cell(b, t, 0, 3) // Small workload, RB-P normalized to Q
	}
	b.ReportMetric(rbp/float64(b.N), "rbp-vs-q-x")
}

func BenchmarkFig7aTicketUnlock(b *testing.B) {
	var removedGain float64
	for i := 0; i < b.N; i++ {
		t := figures.Fig7a(quick(i))
		// Kunpeng rows are first; Globals=2 row index 2, Removed col 3.
		removedGain += cell(b, t, 2, 3)
	}
	b.ReportMetric(removedGain/float64(b.N), "unlock-removal-x")
}

func BenchmarkFig7bDelegationCombos(b *testing.B) {
	var ldarGain float64
	for i := 0; i < b.N; i++ {
		t := figures.Fig7b(quick(i))
		ldarGain += cell(b, t, 2, 1) // LDAR-DMB st normalized
	}
	b.ReportMetric(ldarGain/float64(b.N), "ldar-vs-full-x")
}

func BenchmarkFig7cContention(b *testing.B) {
	var dsGain float64
	for i := 0; i < b.N; i++ {
		t := figures.Fig7c(quick(i))
		// DSynch-P (row 2) over DSynch (row 1) at interval 0 (col 1).
		dsGain += cell(b, t, 2, 1) / cell(b, t, 1, 1)
	}
	b.ReportMetric(dsGain/float64(b.N), "dsynchp-gain-x")
}

func BenchmarkFig8aQueueStack(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		t := figures.Fig8a(quick(i))
		// Queue row: DSynch-P (col 3) over DSynch (col 2).
		gain += cell(b, t, 0, 3) / cell(b, t, 0, 2)
	}
	b.ReportMetric(gain/float64(b.N), "queue-pilot-gain-x")
}

func BenchmarkFig8bList(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		t := figures.Fig8b(quick(i))
		// DSynch-P (row 2) over DSynch (row 1) at 50 preloaded (col 2).
		gain += cell(b, t, 2, 2) / cell(b, t, 1, 2)
	}
	b.ReportMetric(gain/float64(b.N), "list50-pilot-gain-x")
}

func BenchmarkFig8cHashTable(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		t := figures.Fig8c(quick(i))
		// DSynch-P (row 2) over DSynch (row 1) at 32 buckets (col 2 in
		// the quick sweep {2, 32, 256}).
		gain += cell(b, t, 2, 2) / cell(b, t, 1, 2)
	}
	b.ReportMetric(gain/float64(b.N), "ht32-pilot-gain-x")
}

func BenchmarkFig8dFloorplan(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		t := figures.Fig8d(quick(i))
		rel += cell(b, t, 0, 3) // DSynch-P time relative to DSynch
	}
	b.ReportMetric(rel/float64(b.N), "pilot-time-ratio")
}
