#!/bin/sh
# Perf-regression gate: rerun the simulator hot-path microbenchmarks
# in-process and compare them against the committed BENCH_sim.json.
# Exits non-zero (with a readable delta table) when ns/op regresses
# beyond the threshold, allocs/op grow at all, or ns/op improves
# beyond -improve-threshold (a stale snapshot: refresh it with
# `make bench-snapshot`). Run from anywhere; extra arguments are
# passed straight to `armbar perfcheck`, e.g.
#
#   scripts/perf_gate.sh -threshold 1.5
#   scripts/perf_gate.sh -handicap 2     # demonstrate a failing gate
#   scripts/perf_gate.sh -improve-threshold 0   # one-sided gate
set -eu

cd "$(dirname "$0")/.."
exec go run ./cmd/armbar perfcheck "$@"
