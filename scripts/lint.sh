#!/bin/sh
# Static-analysis gate: run the armvet pass suite (determvet, lockvet,
# atomicvet, allocvet, metricvet) over the whole module and fail on any finding.
# armvet typechecks the repo from source with the pure-Go toolchain
# (no cgo, no network), so the only requirement is a Go toolchain new
# enough for the go.mod language version. Degrade loudly, not
# silently: an old toolchain is an error, never a skipped gate.
# Extra arguments are passed straight through, e.g.
#
#   scripts/lint.sh -list
#   scripts/lint.sh ./internal/sim
set -eu

cd "$(dirname "$0")/.."

# go.mod says "go 1.22"; armvet's parser relies on 1.22 semantics
# (ast.Unparen, for-range scoping). Reject older toolchains with a
# clear message instead of a confusing compile error.
gover=$(go env GOVERSION 2>/dev/null || true)
case "$gover" in
"")
	echo "lint: cannot determine Go toolchain version ('go env GOVERSION' failed);" >&2
	echo "lint: armvet needs Go >= 1.22 — install or fix the toolchain, do not skip this gate" >&2
	exit 2
	;;
go1 | go1.[0-9] | go1.[0-9].* | go1.1[0-9] | go1.1[0-9].* | go1.2[01] | go1.2[01].*)
	echo "lint: Go toolchain $gover is too old for armvet (needs go1.22+)" >&2
	echo "lint: upgrade the toolchain; this gate must not be skipped" >&2
	exit 2
	;;
esac

if [ "$#" -eq 0 ]; then
	set -- ./...
fi
exec go run ./cmd/armvet "$@"
