#!/bin/sh
# Live-observability smoke test (`make serve-smoke`): start a cold
# `-quick all` run with -serve on an ephemeral port, then poll the
# endpoints while it works:
#
#   /healthz   must answer "ok"
#   /metrics   must be parseable Prometheus text (every non-comment
#              line "name[{labels}] value") and include the profiler's
#              sim_profile_cycles series once cells have simulated
#   /progress  must be JSON whose cells.done count never decreases
#              across polls (monotone progress)
#
# The run must then exit 0 itself. Everything happens in temp dirs; a
# failed assertion kills the run and exits nonzero.
set -eu

cd "$(dirname "$0")/.."

work=$(mktemp -d)
cleanup() {
	[ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

fetch() { curl -fsS --max-time 5 "$1"; }

go build -o "$work/armbar" ./cmd/armbar

# -par 2 forces the worker pool even on single-CPU machines: cells run
# inline without a pool (-par 1), which would leave the per-cell
# counters legitimately at zero and defeat the monotone-done check.
"$work/armbar" -quick -times=false -par 2 -cache-dir "$work/cache" -serve 127.0.0.1:0 \
	-manifest "$work/manifest.json" all \
	> "$work/stdout" 2> "$work/stderr" &
pid=$!

# The bound address appears on stderr as soon as the listener is up.
addr=
for _ in $(seq 1 50); do
	addr=$(sed -n 's|^# serve    listening on http://\([^ ]*\).*|\1|p' "$work/stderr")
	[ -n "$addr" ] && break
	kill -0 "$pid" 2>/dev/null || { echo "serve-smoke: run died before binding:"; cat "$work/stderr"; exit 1; }
	sleep 0.1
done
[ -n "$addr" ] || { echo "serve-smoke: no listening line on stderr"; exit 1; }
base="http://$addr"
echo "serve-smoke: polling $base"

[ "$(fetch "$base/healthz")" = "ok" ] || { echo "serve-smoke: bad /healthz"; exit 1; }

# Poll while the run works: done counts must be monotone and /metrics
# must stay parseable on every scrape.
last=-1
polls=0
while kill -0 "$pid" 2>/dev/null; do
	# Compare only successful polls: a scrape racing the run's exit
	# must not read as regress. `"done":<digit>` matches only the cells
	# block — experiment states render as "state":"done" (no digit) and
	# the experiment counter field is named experiments_done.
	if prog=$(fetch "$base/progress" 2>/dev/null); then
		done_now=$(printf '%s' "$prog" | tr -d ' \n' \
			| sed -n 's/.*"done":\([0-9][0-9]*\).*/\1/p')
		if [ -n "$done_now" ]; then
			if [ "$done_now" -lt "$last" ]; then
				echo "serve-smoke: cells.done went backwards: $last -> $done_now"
				exit 1
			fi
			last=$done_now
			polls=$((polls + 1))
		fi
	fi
	fetch "$base/metrics" > "$work/metrics.prom" 2>/dev/null || true
	if [ -s "$work/metrics.prom" ]; then
		bad=$(awk '!/^#/ && NF { if (!($0 ~ /^[a-zA-Z_:][a-zA-Z0-9_:]*({[^}]*})? -?[0-9+.eEInf-]+$/)) print }' \
			"$work/metrics.prom" | head -3)
		if [ -n "$bad" ]; then
			echo "serve-smoke: unparseable /metrics lines:"
			echo "$bad"
			exit 1
		fi
	fi
	sleep 0.3
done
wait "$pid" || { echo "serve-smoke: run exited nonzero:"; tail -5 "$work/stderr"; exit 1; }
pid=

[ "$polls" -ge 1 ] || { echo "serve-smoke: never managed a /progress poll"; exit 1; }
[ "$last" -ge 1 ] || { echo "serve-smoke: cells.done never advanced past 0"; exit 1; }
grep -q 'sim_profile_cycles{cause=' "$work/metrics.prom" || {
	echo "serve-smoke: final /metrics scrape lacks sim_profile_cycles"
	exit 1
}
echo "serve-smoke: OK ($polls progress polls, final done=$last)"
