#!/bin/sh
# Result-cache equivalence gate, run by `make verify` (cachecheck):
# regenerate the determinism fast subset three ways — cold (fresh
# temp cache dir), warm (same dir, every cell replayed from disk),
# and -cache=off — and require all three outputs byte-identical.
# Everything happens in temp dirs, so the gate never touches (or is
# contaminated by) a developer's .armbar-cache/. Extra arguments
# replace the experiment list, e.g.
#
#   scripts/cache_check.sh table1 fig4
set -eu

cd "$(dirname "$0")/.."

# Keep in sync with fastSubset in internal/figures/determinism_test.go.
if [ "$#" -eq 0 ]; then
	set -- table1 table3 fig4 fig5 fig6d fig7b fig8a fig8d seqlock a64
fi

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
bin="$work/armbar"
go build -o "$bin" ./cmd/armbar

t0=$(date +%s.%N)
"$bin" -quick -csv -times=false -cache-dir "$work/cache" "$@" > "$work/cold.csv"
t1=$(date +%s.%N)
"$bin" -quick -csv -times=false -cache-dir "$work/cache" "$@" > "$work/warm.csv"
t2=$(date +%s.%N)
"$bin" -quick -csv -times=false -cache=off "$@" > "$work/off.csv"

if ! cmp -s "$work/cold.csv" "$work/warm.csv"; then
	echo "cachecheck: FAIL — warm-cache output differs from the cold run" >&2
	diff "$work/cold.csv" "$work/warm.csv" | head -20 >&2 || true
	exit 1
fi
if ! cmp -s "$work/cold.csv" "$work/off.csv"; then
	echo "cachecheck: FAIL — -cache=off output differs from the cached run" >&2
	diff "$work/cold.csv" "$work/off.csv" | head -20 >&2 || true
	exit 1
fi

awk -v a="$t0" -v b="$t1" -v c="$t2" 'BEGIN {
	cold = b - a; warm = c - b
	printf "cachecheck: OK — cold %.2fs, warm %.2fs (%.0f%% of cold), -cache=off identical\n",
		cold, warm, (cold > 0 ? 100 * warm / cold : 0)
}'
