#!/bin/sh
# Regenerates BENCH_sim.json, the committed snapshot of the simulator
# hot-path microbenchmarks. Run from the repo root (or via
# `make bench-snapshot`) on a quiet machine; commit the result so perf
# regressions in the dispatch/commit paths show up in review diffs.
# The gate is two-sided: perfcheck also fails on improvements beyond
# its -improve-threshold, and this script is how that failure is
# resolved — rerun it so the speedup becomes the enforced baseline.
set -eu

cd "$(dirname "$0")/.."
out=BENCH_sim.json

raw=$(go test -run '^$' -bench 'Rendezvous|StoreCommit|StoreDMB|CompiledDispatch|CellCacheHit|DirectoryRank|DirectorySharerChurn|BarrierScale|ExploreStates' -benchmem \
	./internal/sim ./internal/cellcache ./internal/mesi ./internal/barrier ./internal/explore)

# Result-cache context: time `-quick all` cold (fresh cache dir) and
# warm (same dir, every cell replayed from disk). Recorded in the
# snapshot for reviewers — perfcheck prints but does not gate it.
# The interp cold run (third, its own fresh cache dir) records the
# whole-pipeline cost of the interpreted engine next to the compiled
# default, so the engine speedup is visible in review diffs.
bin=$(mktemp -d)/armbar
cachedir=$(mktemp -d)
interpdir=$(mktemp -d)
trap 'rm -rf "$(dirname "$bin")" "$cachedir" "$interpdir"' EXIT
go build -o "$bin" ./cmd/armbar
cold0=$(date +%s.%N)
"$bin" -quick -times=false -cache-dir "$cachedir" all > /dev/null
cold1=$(date +%s.%N)
"$bin" -quick -times=false -cache-dir "$cachedir" all > /dev/null
warm1=$(date +%s.%N)
interp0=$(date +%s.%N)
"$bin" -quick -times=false -engine=interp -cache-dir "$interpdir" all > /dev/null
interp1=$(date +%s.%N)
cold=$(awk -v a="$cold0" -v b="$cold1" 'BEGIN { printf "%.2f", b - a }')
warm=$(awk -v a="$cold1" -v b="$warm1" 'BEGIN { printf "%.2f", b - a }')
interp=$(awk -v a="$interp0" -v b="$interp1" 'BEGIN { printf "%.2f", b - a }')

printf '%s\n' "$raw" | awk \
    -v goversion="$(go env GOVERSION)" \
    -v maxprocs="${GOMAXPROCS:-$(nproc)}" \
    -v date="$(date -u +%Y-%m-%d)" \
    -v cold="$cold" -v warm="$warm" -v interp="$interp" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    # Key metrics off their unit labels, not field positions: custom
    # benchmark metrics (e.g. ExploreStates states/sec) insert columns.
    ns = "0"; bytes = "0"; allocs = "0"
    for (i = 3; i < NF; i += 2) {
        if ($(i+1) == "ns/op") ns = $i
        else if ($(i+1) == "B/op") bytes = $i
        else if ($(i+1) == "allocs/op") allocs = $i
    }
    benches[++n] = sprintf("    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
        name, $2, ns, bytes, allocs)
}
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
END {
    if (n == 0) { print "no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    print "{"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"gomaxprocs\": %s,\n", maxprocs
    printf "  \"cold_wall_seconds\": %s,\n", cold
    printf "  \"warm_wall_seconds\": %s,\n", warm
    printf "  \"interp_cold_wall_seconds\": %s,\n", interp
    print "  \"benchmarks\": ["
    for (i = 1; i <= n; i++) printf "%s%s\n", benches[i], (i < n ? "," : "")
    print "  ]"
    print "}"
}' > "$out"

# Every regeneration also appends the snapshot as one compact JSON
# line to the committed history, so `armbar perfcheck` can show how
# the baseline itself drifted across refreshes. Indentation is
# line-leading only and JSON strings hold no newlines, so stripping
# leading whitespace and joining lines is a faithful compaction.
hist=BENCH_history.jsonl
awk '{ sub(/^[ \t]+/, ""); printf "%s", $0 } END { print "" }' "$out" >> "$hist"

# A snapshot is only comparable to runs from the same toolchain and
# commit, so record where it came from next to it.
manifest=BENCH_sim.manifest.json
rev=$(git rev-parse HEAD 2>/dev/null || echo unknown)
dirty=$(git status --porcelain 2>/dev/null | grep -q . && echo '+dirty' || true)
cat > "$manifest" <<EOF
{
  "tool": "bench_snapshot.sh",
  "date": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "go_version": "$(go env GOVERSION)",
  "git_revision": "$rev$dirty",
  "gomaxprocs": ${GOMAXPROCS:-$(nproc)},
  "snapshot": "$out"
}
EOF

echo "wrote $out and $manifest, appended to $hist:"
cat "$out"
