#!/bin/sh
# Regenerates BENCH_sim.json, the committed snapshot of the simulator
# hot-path microbenchmarks. Run from the repo root (or via
# `make bench-snapshot`) on a quiet machine; commit the result so perf
# regressions in the dispatch/commit paths show up in review diffs.
# The gate is two-sided: perfcheck also fails on improvements beyond
# its -improve-threshold, and this script is how that failure is
# resolved — rerun it so the speedup becomes the enforced baseline.
set -eu

cd "$(dirname "$0")/.."
out=BENCH_sim.json

raw=$(go test -run '^$' -bench 'Rendezvous|StoreCommit|StoreDMB' -benchmem ./internal/sim)

printf '%s\n' "$raw" | awk \
    -v goversion="$(go env GOVERSION)" \
    -v maxprocs="${GOMAXPROCS:-$(nproc)}" \
    -v date="$(date -u +%Y-%m-%d)" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    benches[++n] = sprintf("    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
        name, $2, $3, $5, $7)
}
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
END {
    if (n == 0) { print "no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    print "{"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"gomaxprocs\": %s,\n", maxprocs
    print "  \"benchmarks\": ["
    for (i = 1; i <= n; i++) printf "%s%s\n", benches[i], (i < n ? "," : "")
    print "  ]"
    print "}"
}' > "$out"

# A snapshot is only comparable to runs from the same toolchain and
# commit, so record where it came from next to it.
manifest=BENCH_sim.manifest.json
rev=$(git rev-parse HEAD 2>/dev/null || echo unknown)
dirty=$(git status --porcelain 2>/dev/null | grep -q . && echo '+dirty' || true)
cat > "$manifest" <<EOF
{
  "tool": "bench_snapshot.sh",
  "date": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "go_version": "$(go env GOVERSION)",
  "git_revision": "$rev$dirty",
  "gomaxprocs": ${GOMAXPROCS:-$(nproc)},
  "snapshot": "$out"
}
EOF

echo "wrote $out and $manifest:"
cat "$out"
