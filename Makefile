GO ?= go

# The verify chain is what CI (and any contributor) runs before a
# merge: full build, vet, the armvet static-analysis suite, the whole
# test suite, the concurrency packages again under the race detector
# (including the simulator's direct-dispatch scheduler), the
# cycle-attribution conservation invariant over the fast golden
# subset, then the perf-regression gate against the committed
# BENCH_sim.json. `-run 'Test'` keeps the race pass on the (fast)
# unit tests rather than the benchmarks. scalecheck re-runs the
# 256-core barrier smoke under the race detector so the many-core
# scheduler path is exercised at scale on every merge.
.PHONY: verify
verify: build vet lint test race scalecheck profilecheck cachecheck fencecheck perfcheck

.PHONY: build
build:
	$(GO) build ./...

.PHONY: vet
vet:
	$(GO) vet ./...

# Static-analysis gate: the armvet pass suite (determvet, lockvet,
# atomicvet, allocvet, metricvet, progvet) must run clean over the
# module. Suppress a deliberate violation with //armvet:ignore <pass>
# and a reason.
.PHONY: lint
lint:
	./scripts/lint.sh

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race -run Test ./internal/runner ./internal/core ./internal/sim ./internal/sb ./internal/progress ./internal/serve

# Many-core smoke under the race detector: a 256-thread sense-reversing
# barrier run drives the direct-dispatch scheduler, the sharded
# directory bitsets and the compiled engine at scale-out thread counts
# that the ordinary race pass never reaches.
.PHONY: scalecheck
scalecheck:
	$(GO) test -race -run 'TestScaleOut256' ./internal/barrier

# Full determinism sweep: every registered experiment, sequential vs
# -par 8, two seeds. Minutes of wall clock; run before merging
# simulator or runner perf work.
.PHONY: determinism
determinism:
	ARMBAR_DETERMINISM_FULL=1 $(GO) test -run TestParallelOutputMatchesSequential -timeout 120m ./internal/figures

# Result-cache equivalence gate: the fast golden subset regenerated
# cold, warm (from the cache the cold run filled) and with -cache=off
# must be byte-identical. Runs entirely in temp dirs.
.PHONY: cachecheck
cachecheck:
	./scripts/cache_check.sh

# Cycle-attribution conservation gate: with profiling enabled, every
# simulated cycle of the fast golden subset must land in exactly one
# cause bucket (zero gaps, attributed == engine cycles) under both
# engines at two seeds — and the rendered output must still hash to
# the committed golden digest.
.PHONY: profilecheck
profilecheck:
	$(GO) test -run 'TestProfileConservation' -timeout 30m ./internal/sim ./internal/figures

# Fence-verification gate: the reorder-bounded explorer must agree
# with absmodel's closed-form fence requirements on every placement of
# every litmus shape, machine-check the Pilot barrier removal (armvet
# fencevet), fuzz a fixed-seed 220-shape generated corpus through the
# three oracles (explorer / closed-form model / sim containment), and
# stay a sound over-approximation of what the simulator samples (the
# explore package's agreement and determinism tests).
.PHONY: fencecheck
fencecheck:
	$(GO) run ./cmd/armvet fencevet -fuzz 220 -fuzzseed 42
	$(GO) test -run 'TestFormulaAgreement|TestSimAgreement|TestPinnedAnomalies|TestCompiledParityShapes|TestSeedIndependentVerdicts|TestFuzzThreeOracles|TestExploreParMatchesSequential' ./internal/explore

# Live-observability smoke: run `-quick` with -serve against a cold
# cache and curl /healthz, /metrics and /progress while it runs.
.PHONY: serve-smoke
serve-smoke:
	./scripts/serve_smoke.sh

# Simulator hot-path microbenchmarks (rendezvous, store commit, DMB,
# cache lookup, directory bitsets at 1024 cores, barrier scaling,
# explorer throughput).
.PHONY: bench-sim
bench-sim:
	$(GO) test -run '^$$' -bench 'Rendezvous|StoreCommit|StoreDMB|CellCacheHit|DirectoryRank|DirectorySharerChurn|BarrierScale|ExploreStates' -benchmem ./internal/sim ./internal/cellcache ./internal/mesi ./internal/barrier ./internal/explore

# Regenerate the committed BENCH_sim.json snapshot from bench-sim.
.PHONY: bench-snapshot
bench-snapshot:
	./scripts/bench_snapshot.sh

# Perf-regression gate: rerun the hot-path microbenchmarks and fail
# when they regress against the committed BENCH_sim.json.
.PHONY: perfcheck
perfcheck:
	./scripts/perf_gate.sh

# One full-suite regeneration through the parallel runner.
.PHONY: bench-all
bench-all:
	$(GO) test -run '^$$' -bench BenchmarkRunnerAll -benchtime 1x .

# Remove generated local state (the default result-cache directory).
.PHONY: clean
clean:
	rm -rf .armbar-cache
